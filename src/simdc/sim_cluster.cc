#include "simdc/sim_cluster.h"

#include "common/logging.h"
#include "core/types.h"

namespace dcy::simdc {

/// DcEnv implementation binding one protocol instance to the simulated ring.
class SimCluster::NodeEnv final : public core::DcEnv {
 public:
  NodeEnv(SimCluster* cluster, core::NodeId id) : cluster_(cluster), id_(id) {}

  SimTime Now() override { return cluster_->sim_.Now(); }

  void SendRequestMsg(const core::RequestMsg& msg) override {
    // Requests travel anti-clockwise: to the predecessor.
    auto& net = *cluster_->network_;
    const core::NodeId target = net.Predecessor(id_);
    net.SendRequest(id_, core::kRequestWireBytes, [cluster = cluster_, target, msg] {
      cluster->nodes_[target].dc->OnRequestMsg(msg);
    });
  }

  void SendBatMsg(const core::BatHeader& header, bool is_load) override {
    const double disk_bps = cluster_->options_.disk_bytes_per_sec;
    if (is_load && disk_bps > 0) {
      // Loads come off the owner's cold storage first.
      const SimTime disk_time =
          static_cast<SimTime>(static_cast<double>(header.bat_size) / disk_bps * 1e9);
      cluster_->sim_.Schedule(disk_time, [this, header] { ForwardBat(header); });
    } else {
      ForwardBat(header);
    }
  }

  void DeliverToQuery(core::QueryId query, core::BatId bat) override {
    // Decoupled so the protocol never re-enters itself mid-iteration.
    cluster_->sim_.Schedule(0, [cluster = cluster_, id = id_, query, bat] {
      cluster->nodes_[id].driver->OnDelivered(query, bat);
    });
  }

  void FailQuery(core::QueryId query, core::BatId bat) override {
    cluster_->sim_.Schedule(0, [cluster = cluster_, id = id_, query, bat] {
      cluster->nodes_[id].driver->OnFailed(query, bat);
    });
  }

  uint64_t BatQueueLoadBytes() override { return cluster_->network_->DataQueueBytes(id_); }

  uint64_t BatQueueCapacityBytes() override {
    return cluster_->options_.bat_queue_capacity;
  }

 private:
  void ForwardBat(const core::BatHeader& header) {
    auto& net = *cluster_->network_;
    const core::NodeId target = net.Successor(id_);
    const uint64_t wire = header.bat_size + core::kBatHeaderWireBytes;
    const bool ok = net.SendData(id_, wire, [cluster = cluster_, target, header] {
      cluster->nodes_[target].dc->OnBatMsg(header);
    });
    if (!ok) {
      // DropTail rejected the BAT: it is lost; the owner's lost-BAT timer
      // will return it to cold storage eventually.
      DCY_LOG(kDebug) << "node " << id_ << " dropped BAT " << header.bat_id;
    }
  }

  SimCluster* cluster_;
  core::NodeId id_;
};

SimCluster::SimCluster(ClusterOptions options, ExperimentCollector* collector)
    : options_(options), rng_(options.seed), collector_(collector) {
  net::RingNetwork::Options net_opts;
  net_opts.num_nodes = options_.num_nodes;
  net_opts.data.bandwidth_bytes_per_sec = GbpsToBytesPerSec(options_.link_gbps);
  net_opts.data.propagation_delay = options_.link_delay;
  net_opts.data.queue_capacity_bytes =
      options_.physical_queue_factor <= 0.0
          ? 0  // lossless (flow-controlled) data channel
          : static_cast<uint64_t>(static_cast<double>(options_.bat_queue_capacity) *
                                  options_.physical_queue_factor);
  net_opts.data.loss_probability = options_.loss_probability;
  net_opts.request.bandwidth_bytes_per_sec = GbpsToBytesPerSec(options_.link_gbps);
  net_opts.request.propagation_delay = options_.link_delay;
  net_opts.request.queue_capacity_bytes = options_.request_queue_capacity;
  net_opts.request.loss_probability = options_.loss_probability;
  network_ = std::make_unique<net::RingNetwork>(&sim_, net_opts, &rng_);

  nodes_.resize(options_.num_nodes);
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    NodeRuntime& rt = nodes_[i];
    rt.env = std::make_unique<NodeEnv>(this, i);
    if (options_.adaptive_loit) {
      rt.loit = std::make_unique<core::AdaptiveLoit>(options_.adaptive_loit_options);
    } else {
      rt.loit = std::make_unique<core::StaticLoit>(options_.static_loit);
    }
    core::DcNodeOptions node_opts = options_.node;
    node_opts.node_id = i;
    node_opts.ring_size = options_.num_nodes;
    rt.dc = std::make_unique<core::DcNode>(node_opts, rt.env.get(), rt.loit.get(), collector_);
    rt.driver = std::make_unique<QueryDriver>(&sim_, rt.dc.get(), options_.cores_per_node,
                                              collector_);
  }
}

SimCluster::~SimCluster() = default;

void SimCluster::AddBat(core::BatId bat, uint64_t size, core::NodeId owner) {
  DCY_CHECK(owner < options_.num_nodes);
  DCY_CHECK(nodes_[owner].dc->AddOwnedBat(bat, size)) << "duplicate BAT " << bat;
}

void SimCluster::Start() {
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    NodeRuntime& rt = nodes_[i];
    core::DcNode* dc = rt.dc.get();
    const auto& node_opts = dc->options();
    rt.load_all_timer = std::make_unique<sim::PeriodicTimer>(
        &sim_, node_opts.load_all_period, [dc] { dc->OnLoadAllTimer(); });
    rt.maintenance_timer = std::make_unique<sim::PeriodicTimer>(
        &sim_, node_opts.maintenance_period, [dc] { dc->OnMaintenanceTimer(); });
    rt.adapt_timer = std::make_unique<sim::PeriodicTimer>(
        &sim_, node_opts.adapt_period, [dc] { dc->OnAdaptTimer(); });
    // Stagger the first tick of each node's timers.
    const SimTime offset = node_opts.load_all_period * i / options_.num_nodes;
    sim_.Schedule(offset, [&rt] {
      rt.load_all_timer->Start();
      rt.maintenance_timer->Start();
      rt.adapt_timer->Start();
    });
  }
}

bool SimCluster::RunUntilQueriesDrain(SimTime deadline, SimTime poll) {
  const uint64_t expected = total_expected();
  while (sim_.Now() < deadline) {
    const SimTime next = std::min(deadline, sim_.Now() + poll);
    sim_.RunUntil(next);
    if (expected > 0 && total_finished() + total_failed() >= expected) return true;
  }
  return expected > 0 && total_finished() + total_failed() >= expected;
}

uint64_t SimCluster::total_expected() const {
  uint64_t n = 0;
  for (const auto& rt : nodes_) n += rt.driver->expected();
  return n;
}

uint64_t SimCluster::total_registered() const {
  uint64_t n = 0;
  for (const auto& rt : nodes_) n += rt.driver->registered();
  return n;
}

uint64_t SimCluster::total_finished() const {
  uint64_t n = 0;
  for (const auto& rt : nodes_) n += rt.driver->finished();
  return n;
}

uint64_t SimCluster::total_failed() const {
  uint64_t n = 0;
  for (const auto& rt : nodes_) n += rt.driver->failed();
  return n;
}

SimTime SimCluster::total_cpu_busy() const {
  SimTime n = 0;
  for (const auto& rt : nodes_) n += rt.driver->cpu().busy_time();
  return n;
}

SimTime SimCluster::last_finish_time() const {
  SimTime latest = 0;
  for (const auto& rt : nodes_) latest = std::max(latest, rt.driver->last_finish_time());
  return latest;
}

uint64_t SimCluster::total_data_drops() const {
  uint64_t n = 0;
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    n += network_->data_link(i).stats().messages_dropped_queue;
  }
  return n;
}

}  // namespace dcy::simdc
