// The per-node two-tier fragment store: every resident fragment occupies a
// ref-counted buffer frame under a hard byte budget; when admission would
// exceed it, the lowest-interest unpinned frames are spilled to the
// checksummed on-disk tier (spill_file.h) by a background eviction thread
// (asynchronous, batched writes) and promoted back when a pin faults on
// them. Modeled on a buffer manager's frame/eviction-provider split
// (ScaleStore's Buffermanager + PageProvider), collapsed to fragment
// granularity: fragments are immutable, so a "frame" is just the shared
// BatPtr plus pin count and tier bookkeeping — no latching or dirty state.
//
// Robustness contract:
//  - Admission beyond the budget is typed ResourceExhausted backpressure
//    carrying the numbers (requested, budget, resident, spill queue), never
//    bad_alloc. Pins on spilled fragments block with a deadline while the
//    eviction thread makes room, then fail typed.
//  - A damaged spill file (torn write, bit rot) decodes to Corruption, is
//    deleted, and the fragment is reported for re-fetch from the ring — a
//    corrupt image is never served.
//  - Recover() rebuilds the frame table from the disk tier after a crash,
//    admitting only checksum-valid files.
//
// Thread-safe: one mutex guards the frame table; file I/O (spill writes,
// fault-in reads) happens outside the lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bat/catalog.h"
#include "common/status.h"
#include "core/loi.h"
#include "core/types.h"
#include "storage/spill_file.h"

namespace dcy::storage {

struct FragmentStoreOptions {
  /// Hard byte budget for resident fragment payloads; 0 = unlimited (the
  /// store degenerates to a plain in-memory catalog).
  uint64_t budget_bytes = 0;
  /// Directory of the disk tier; "" disables spilling (over-budget
  /// admissions then fail as soon as nothing droppable remains).
  std::string spill_dir;
  /// Above `high` * budget the eviction thread proactively spills the
  /// coldest unpinned frames down to `low` * budget, so admissions usually
  /// find room without waiting on I/O.
  double spill_high_watermark = 0.90;
  double spill_low_watermark = 0.70;
  /// Queued-but-unwritten spill bytes beyond which the store reports
  /// memory pressure (spill I/O is not keeping up; callers shed load).
  uint64_t max_spill_backlog_bytes = 64u << 20;
  /// Longest a pin fault-in without an explicit deadline waits for room.
  std::chrono::milliseconds default_fault_wait{5000};
  /// Windowed-decay interest used for eviction ranking.
  core::InterestTracker::Options interest;
  /// When false, evictions spill inline on the calling thread
  /// (deterministic; unit tests).
  bool async_spill = true;
};

/// \brief Counters and gauges of one store (or, summed, of a cluster).
struct MemoryMetrics {
  // Gauges.
  uint64_t budget_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t pinned_bytes = 0;
  uint64_t frames_resident = 0;
  uint64_t frames_spilled = 0;
  uint64_t spill_queue_depth = 0;
  uint64_t spill_queue_bytes = 0;
  // Lifetime counters.
  uint64_t admissions = 0;
  uint64_t admission_rejections = 0;  ///< typed ResourceExhausted returned
  uint64_t evictions = 0;             ///< payloads dropped from RAM
  uint64_t spills = 0;                ///< spill files written
  uint64_t spill_bytes = 0;
  uint64_t spill_failures = 0;  ///< write errors (payload stayed resident)
  uint64_t promotions = 0;      ///< fault-ins from the disk tier
  uint64_t promotion_bytes = 0;
  uint64_t pressure_waits = 0;  ///< admissions that blocked on spill I/O
  uint64_t pressure_sheds = 0;  ///< submissions shed under memory pressure
  uint64_t corrupt_spill_files = 0;
  uint64_t recovered_from_disk = 0;   ///< valid files re-admitted by Recover
  uint64_t refetched_from_ring = 0;   ///< re-homed after a corrupt/lost file

  /// Sums counters and gauges of `other` into this (cluster aggregation).
  void Add(const MemoryMetrics& other);
};

class FragmentStore final : public bat::FragmentSource {
 public:
  explicit FragmentStore(FragmentStoreOptions options);
  ~FragmentStore() override;

  FragmentStore(const FragmentStore&) = delete;
  FragmentStore& operator=(const FragmentStore&) = delete;

  /// Admits a fragment. `durable` frames (owned fragments) spill to disk
  /// under pressure; non-durable frames (ring-delivered cache entries) are
  /// simply dropped. `initial_pins` arrives pinned (the caller owns the
  /// matching Unpin calls). Waits up to `max_wait` for the eviction thread
  /// to make room; 0 fails fast with typed backpressure. AlreadyExists if
  /// the id or name is taken.
  /// `version` is the fragment's base version (ISSUE-9): compaction
  /// republishes a folded fragment under the next version.
  Status Admit(core::BatId id, const std::string& name, bat::BatPtr bat, bool durable,
               uint32_t initial_pins = 0,
               std::chrono::milliseconds max_wait = std::chrono::milliseconds(0),
               uint64_t version = 0);

  /// Pins a fragment, faulting it in from the disk tier if spilled (counted
  /// as a promotion). Blocks up to `deadline` when the fault-in needs room;
  /// a pinned frame is never evicted. Corruption means the spill image was
  /// damaged — it has been deleted and the frame dropped; re-admit from the
  /// ring and retry. When `version` is non-null it receives the frame's base
  /// version under the same lock — pins resolve a (fragment, version) pair.
  Result<bat::BatPtr> Pin(core::BatId id,
                          std::chrono::steady_clock::time_point deadline =
                              std::chrono::steady_clock::time_point::max(),
                          uint64_t* version = nullptr);

  /// Pin without any chance of I/O or blocking: value if the frame is
  /// resident, FailedPrecondition if spilled, NotFound if absent. For
  /// callers on latency-critical threads (the ring service loop).
  Result<bat::BatPtr> TryPinResident(core::BatId id, uint64_t* version = nullptr);

  /// The admitted base version of a fragment; NotFound for absent frames.
  Result<uint64_t> VersionOf(core::BatId id) const;

  /// Releases one pin. A no-op for unknown ids (the frame may have been
  /// force-dropped meanwhile).
  void Unpin(core::BatId id);

  // FragmentSource: unpinned fetches (the returned shared_ptr keeps the
  // payload alive for the caller even if the frame is evicted later).
  Result<bat::BatPtr> GetByName(const std::string& name) override;
  Result<bat::BatPtr> GetById(core::BatId id) override;

  /// Resident-only fetch without touching interest or pins; never blocks.
  Result<bat::BatPtr> GetResident(core::BatId id);

  bool Contains(core::BatId id) const;
  bool IsSpilled(core::BatId id) const;

  /// Removes a frame and its spill file. Pinned frames are removed too
  /// (payloads are shared_ptr-backed, so holders stay valid); their
  /// outstanding Unpins become no-ops.
  void Drop(core::BatId id);

  /// Folds the ring-circulation LOI of a passing hop into the frame's
  /// eviction rank; unknown ids are ignored.
  void NoteRingLoi(core::BatId id, double loi);

  /// Counter hooks for the embedding runtime.
  void NoteRefetched();
  void NotePressureShed();

  /// True while spill I/O is not keeping up with demand: the resident set
  /// sits above the high watermark and the disk tier cannot (or can no
  /// longer) absorb the overhang. Callers shed load.
  bool UnderPressure() const;

  struct RecoveryReport {
    std::vector<SpillInfo> recovered;  ///< checksum-valid files re-admitted
    uint32_t corrupt_files = 0;        ///< damaged files detected + deleted
  };

  /// Scans the spill directory and re-admits every checksum-valid file as a
  /// spilled durable frame (payloads stay on disk until pinned). Damaged
  /// files are deleted and counted — the caller re-homes those fragments
  /// from the ring. Idempotent for already-known ids.
  RecoveryReport Recover();

  /// Simulates losing RAM in a crash: every frame, pin, and queued spill is
  /// forgotten; the disk tier is untouched (Recover() is the counterpart).
  void ForgetAllForCrash();

  MemoryMetrics Metrics() const;
  const FragmentStoreOptions& options() const { return options_; }

 private:
  struct Frame {
    core::BatId id = core::kInvalidBat;
    std::string name;
    bat::BatPtr bat;  ///< null while spilled
    uint64_t bytes = 0;
    uint32_t pins = 0;
    bool durable = false;
    bool on_disk = false;       ///< a valid spill file exists
    bool spill_queued = false;  ///< in the eviction thread's queue
    double ring_loi = 0.0;
    uint64_t version = 0;       ///< base version (bumped by compaction)
  };

  double NowSeconds() const;
  std::string PathOf(const Frame& f) const;
  double RankLocked(const Frame& f, double now_s) const;
  Status ExhaustedLocked(uint64_t requested) const;
  void DropPayloadLocked(Frame* f);
  void EraseFrameLocked(Frame* f);
  void QueueSpillLocked(Frame* f);
  /// Frees or schedules enough space for `needed` more resident bytes;
  /// waits on the eviction thread up to `deadline` when only queued spills
  /// can provide it.
  Status MakeRoomLocked(std::unique_lock<std::mutex>& lock, uint64_t needed,
                        std::chrono::steady_clock::time_point deadline);
  /// Queues proactive spills when the resident set crosses the high
  /// watermark.
  void ScheduleWatermarkSpillsLocked();
  /// Writes every queued spill (batched), dropping payloads of still
  /// unpinned frames. Both the background thread and the synchronous
  /// (async_spill = false) path funnel through here.
  void DrainSpillQueueLocked(std::unique_lock<std::mutex>& lock);
  void SpillThreadLoop();
  Result<bat::BatPtr> PinInternal(core::BatId id,
                                  std::chrono::steady_clock::time_point deadline,
                                  bool take_pin, uint64_t* version = nullptr);

  FragmentStoreOptions options_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;  ///< signalled when resident bytes drop
  std::condition_variable work_cv_;   ///< wakes the eviction thread
  std::condition_variable fault_cv_;  ///< fault-in of some frame finished
  std::unordered_map<core::BatId, Frame> frames_;
  std::map<std::string, core::BatId> by_name_;
  std::unordered_set<core::BatId> faulting_;  ///< fault-in I/O in flight
  std::deque<core::BatId> spill_queue_;
  uint64_t spill_queue_bytes_ = 0;
  uint64_t resident_bytes_ = 0;
  core::InterestTracker interest_;
  MemoryMetrics counters_;  ///< lifetime counters only; gauges derived
  bool stop_ = false;
  std::thread spill_thread_;
};

}  // namespace dcy::storage
