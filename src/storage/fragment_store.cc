#include "storage/fragment_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/logging.h"

namespace dcy::storage {

namespace fs = std::filesystem;

void MemoryMetrics::Add(const MemoryMetrics& other) {
  budget_bytes += other.budget_bytes;
  resident_bytes += other.resident_bytes;
  spilled_bytes += other.spilled_bytes;
  pinned_bytes += other.pinned_bytes;
  frames_resident += other.frames_resident;
  frames_spilled += other.frames_spilled;
  spill_queue_depth += other.spill_queue_depth;
  spill_queue_bytes += other.spill_queue_bytes;
  admissions += other.admissions;
  admission_rejections += other.admission_rejections;
  evictions += other.evictions;
  spills += other.spills;
  spill_bytes += other.spill_bytes;
  spill_failures += other.spill_failures;
  promotions += other.promotions;
  promotion_bytes += other.promotion_bytes;
  pressure_waits += other.pressure_waits;
  pressure_sheds += other.pressure_sheds;
  corrupt_spill_files += other.corrupt_spill_files;
  recovered_from_disk += other.recovered_from_disk;
  refetched_from_ring += other.refetched_from_ring;
}

FragmentStore::FragmentStore(FragmentStoreOptions options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      interest_(options_.interest) {
  if (!options_.spill_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.spill_dir, ec);
    if (ec) {
      DCY_LOG(kWarn) << "fragment store: cannot create spill dir "
                    << options_.spill_dir << ": " << ec.message()
                    << "; disk tier disabled";
      options_.spill_dir.clear();
    }
  }
  if (options_.async_spill && !options_.spill_dir.empty()) {
    spill_thread_ = std::thread([this] { SpillThreadLoop(); });
  }
}

FragmentStore::~FragmentStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (spill_thread_.joinable()) spill_thread_.join();
}

double FragmentStore::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string FragmentStore::PathOf(const Frame& f) const {
  return options_.spill_dir + "/" + SpillFileName(f.id);
}

double FragmentStore::RankLocked(const Frame& f, double now_s) const {
  // Lower rank = colder = evicted first. Windowed local interest plus the
  // ring's circulating LOI: a fragment hot on the ring stays resident even
  // if this node has not touched it recently.
  return interest_.Score(f.id, now_s) + f.ring_loi;
}

Status FragmentStore::ExhaustedLocked(uint64_t requested) const {
  uint64_t pinned = 0;
  for (const auto& [id, f] : frames_) {
    if (f.bat != nullptr && f.pins > 0) pinned += f.bytes;
  }
  return Status::ResourceExhausted(
      "fragment store over budget: requested " + std::to_string(requested) +
      " bytes, budget " + std::to_string(options_.budget_bytes) + ", resident " +
      std::to_string(resident_bytes_) + " bytes in " +
      std::to_string(counters_.frames_resident) + " frames (" +
      std::to_string(pinned) + " pinned), spill queue " +
      std::to_string(spill_queue_.size()) + " frames / " +
      std::to_string(spill_queue_bytes_) + " bytes" +
      (options_.spill_dir.empty() ? ", disk tier disabled" : ""));
}

void FragmentStore::DropPayloadLocked(Frame* f) {
  DCY_CHECK(f->bat != nullptr);
  DCY_CHECK(f->pins == 0);
  f->bat.reset();
  resident_bytes_ -= f->bytes;
  --counters_.frames_resident;
  ++counters_.frames_spilled;
  ++counters_.evictions;
  space_cv_.notify_all();
}

void FragmentStore::EraseFrameLocked(Frame* f) {
  // A non-durable frame with no disk copy has no other home: evict it
  // entirely rather than leave a shell that could never be faulted back in.
  DCY_CHECK(f->bat != nullptr);
  DCY_CHECK(f->pins == 0);
  resident_bytes_ -= f->bytes;
  --counters_.frames_resident;
  ++counters_.evictions;
  if (!f->name.empty()) by_name_.erase(f->name);
  interest_.Forget(f->id);
  frames_.erase(f->id);
  space_cv_.notify_all();
}

void FragmentStore::QueueSpillLocked(Frame* f) {
  DCY_CHECK(!f->spill_queued && !f->on_disk && f->durable);
  f->spill_queued = true;
  spill_queue_.push_back(f->id);
  spill_queue_bytes_ += f->bytes;
  work_cv_.notify_one();
}

Status FragmentStore::MakeRoomLocked(std::unique_lock<std::mutex>& lock,
                                     uint64_t needed,
                                     std::chrono::steady_clock::time_point deadline) {
  if (options_.budget_bytes == 0 || needed > options_.budget_bytes) {
    if (options_.budget_bytes != 0 && needed > options_.budget_bytes) {
      ++counters_.admission_rejections;
      return ExhaustedLocked(needed);
    }
    return Status::OK();  // unlimited
  }
  bool waited = false;
  while (resident_bytes_ + needed > options_.budget_bytes) {
    // Cheapest space first: drop payloads that need no I/O (non-durable
    // cache entries, and durable frames whose spill file already exists).
    // Collect candidates, coldest first.
    const double now_s = NowSeconds();
    Frame* coldest_free = nullptr;   // droppable without I/O
    Frame* coldest_dirty = nullptr;  // needs a spill write first
    double free_rank = 0.0, dirty_rank = 0.0;
    for (auto& [id, f] : frames_) {
      if (f.bat == nullptr || f.pins > 0) continue;
      const double rank = RankLocked(f, now_s);
      if (!f.durable || f.on_disk) {
        if (coldest_free == nullptr || rank < free_rank) {
          coldest_free = &f;
          free_rank = rank;
        }
      } else if (!f.spill_queued) {
        if (coldest_dirty == nullptr || rank < dirty_rank) {
          coldest_dirty = &f;
          dirty_rank = rank;
        }
      }
    }
    if (coldest_free != nullptr) {
      if (!coldest_free->durable && !coldest_free->on_disk) {
        EraseFrameLocked(coldest_free);
      } else {
        DropPayloadLocked(coldest_free);
      }
      continue;
    }
    if (coldest_dirty != nullptr && !options_.spill_dir.empty()) {
      QueueSpillLocked(coldest_dirty);
      if (!options_.async_spill) DrainSpillQueueLocked(lock);
      continue;
    }
    // Nothing left to evict directly. If spills are in flight, their
    // completion will free space; otherwise this is hard exhaustion.
    if (spill_queue_.empty() && options_.async_spill) {
      // Queued frames may still be mid-write inside the drain (queue popped
      // but payload not yet dropped); detect via spill_queued flags.
      bool in_flight = false;
      for (const auto& [id, f] : frames_) {
        if (f.spill_queued) {
          in_flight = true;
          break;
        }
      }
      if (!in_flight) {
        ++counters_.admission_rejections;
        return ExhaustedLocked(needed);
      }
    } else if (spill_queue_.empty()) {
      ++counters_.admission_rejections;
      return ExhaustedLocked(needed);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ++counters_.admission_rejections;
      return ExhaustedLocked(needed);
    }
    if (!waited) {
      waited = true;
      ++counters_.pressure_waits;
    }
    space_cv_.wait_until(lock, deadline);
    if (stop_) return Status::Aborted("fragment store shutting down");
  }
  return Status::OK();
}

void FragmentStore::ScheduleWatermarkSpillsLocked() {
  if (options_.budget_bytes == 0 || options_.spill_dir.empty()) return;
  const uint64_t high =
      static_cast<uint64_t>(options_.spill_high_watermark *
                            static_cast<double>(options_.budget_bytes));
  if (resident_bytes_ <= high) return;
  const uint64_t low = static_cast<uint64_t>(
      options_.spill_low_watermark * static_cast<double>(options_.budget_bytes));
  // Project the resident set after queued spills complete; queue the coldest
  // unpinned durable frames until that projection dips under the low mark.
  uint64_t projected = resident_bytes_ > spill_queue_bytes_
                           ? resident_bytes_ - spill_queue_bytes_
                           : 0;
  const double now_s = NowSeconds();
  while (projected > low) {
    Frame* coldest = nullptr;
    double coldest_rank = 0.0;
    for (auto& [id, f] : frames_) {
      if (f.bat == nullptr || f.pins > 0 || f.spill_queued) continue;
      if (!f.durable || f.on_disk) continue;  // MakeRoom drops these for free
      const double rank = RankLocked(f, now_s);
      if (coldest == nullptr || rank < coldest_rank) {
        coldest = &f;
        coldest_rank = rank;
      }
    }
    if (coldest == nullptr) break;
    QueueSpillLocked(coldest);
    projected = projected > coldest->bytes ? projected - coldest->bytes : 0;
  }
}

void FragmentStore::DrainSpillQueueLocked(std::unique_lock<std::mutex>& lock) {
  // Batch: take a snapshot of the queue, write every image outside the
  // lock, then commit the results. New work queued meanwhile is picked up
  // by the next drain.
  while (!spill_queue_.empty()) {
    struct Job {
      core::BatId id;
      std::string name;
      bat::BatPtr bat;
      std::string path;
    };
    std::vector<Job> batch;
    batch.reserve(spill_queue_.size());
    for (core::BatId id : spill_queue_) {
      auto it = frames_.find(id);
      if (it == frames_.end() || it->second.bat == nullptr) continue;
      batch.push_back({id, it->second.name, it->second.bat, PathOf(it->second)});
    }
    spill_queue_.clear();

    lock.unlock();
    struct Done {
      core::BatId id;
      Status status;
      uint64_t bytes;
    };
    std::vector<Done> done;
    done.reserve(batch.size());
    for (const Job& job : batch) {
      const std::string image = EncodeSpillFile(job.id, job.name, *job.bat);
      done.push_back({job.id, WriteSpillFile(job.path, image), image.size()});
    }
    lock.lock();

    for (const Done& d : done) {
      auto it = frames_.find(d.id);
      if (it == frames_.end()) {
        // Dropped while writing; remove the now-orphaned file.
        if (d.status.ok()) {
          std::error_code ec;
          fs::remove(options_.spill_dir + "/" + SpillFileName(d.id), ec);
        }
        continue;  // Drop() already released its queued bytes
      }
      Frame& f = it->second;
      f.spill_queued = false;
      spill_queue_bytes_ = spill_queue_bytes_ >= f.bytes ? spill_queue_bytes_ - f.bytes : 0;
      if (!d.status.ok()) {
        ++counters_.spill_failures;
        DCY_LOG(kWarn) << "fragment store: spill of bat " << d.id
                      << " failed: " << d.status.ToString();
        continue;
      }
      f.on_disk = true;
      ++counters_.spills;
      counters_.spill_bytes += d.bytes;
      if (f.bat != nullptr && f.pins == 0) DropPayloadLocked(&f);
    }
    space_cv_.notify_all();
  }
}

void FragmentStore::SpillThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !spill_queue_.empty(); });
    if (stop_) return;
    DrainSpillQueueLocked(lock);
  }
}

Status FragmentStore::Admit(core::BatId id, const std::string& name, bat::BatPtr bat,
                            bool durable, uint32_t initial_pins,
                            std::chrono::milliseconds max_wait, uint64_t version) {
  DCY_CHECK(bat != nullptr);
  const uint64_t bytes = bat->ByteSize();
  std::unique_lock<std::mutex> lock(mu_);
  if (frames_.count(id) != 0) {
    return Status::AlreadyExists("fragment " + std::to_string(id) +
                                 " already in the store");
  }
  if (!name.empty() && by_name_.count(name) != 0) {
    return Status::AlreadyExists("fragment name '" + name + "' already in the store");
  }
  const auto deadline = max_wait.count() <= 0
                            ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::now() + max_wait;
  Status room = MakeRoomLocked(lock, bytes, deadline);
  if (!room.ok()) return room;
  // Re-check: another thread may have admitted the same id while we waited.
  if (frames_.count(id) != 0) {
    return Status::AlreadyExists("fragment " + std::to_string(id) +
                                 " already in the store");
  }
  Frame f;
  f.id = id;
  f.name = name;
  f.bat = std::move(bat);
  f.bytes = bytes;
  f.pins = initial_pins;
  f.durable = durable;
  f.version = version;
  frames_.emplace(id, std::move(f));
  if (!name.empty()) by_name_.emplace(name, id);
  resident_bytes_ += bytes;
  ++counters_.frames_resident;
  ++counters_.admissions;
  interest_.Touch(id, NowSeconds());
  ScheduleWatermarkSpillsLocked();
  if (!options_.async_spill && !spill_queue_.empty()) DrainSpillQueueLocked(lock);
  return Status::OK();
}

Result<bat::BatPtr> FragmentStore::PinInternal(
    core::BatId id, std::chrono::steady_clock::time_point deadline, bool take_pin,
    uint64_t* version) {
  std::unique_lock<std::mutex> lock(mu_);
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    // An unbounded wait would wedge the caller if spill I/O stalls; cap it
    // so a typed, retryable error surfaces instead.
    deadline = std::chrono::steady_clock::now() + options_.default_fault_wait;
  }
  while (true) {
    auto it = frames_.find(id);
    if (it == frames_.end()) {
      return Status::NotFound("fragment " + std::to_string(id) + " not in the store");
    }
    Frame& f = it->second;
    interest_.Touch(id, NowSeconds());
    if (f.bat != nullptr) {
      if (take_pin) ++f.pins;
      if (version != nullptr) *version = f.version;
      return f.bat;
    }
    // Spilled. If another thread is already reading it, wait for that read.
    if (faulting_.count(id) != 0) {
      if (fault_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return Status::TimedOut("pin of fragment " + std::to_string(id) +
                                " timed out waiting for a concurrent fault-in");
      }
      continue;
    }
    DCY_CHECK(f.on_disk);
    const std::string path = PathOf(f);
    const uint64_t bytes = f.bytes;
    faulting_.insert(id);
    lock.unlock();
    SpillInfo spill_info;
    auto read = ReadSpillFile(path, &spill_info);
    lock.lock();
    faulting_.erase(id);
    fault_cv_.notify_all();
    it = frames_.find(id);
    if (!read.ok()) {
      ++counters_.corrupt_spill_files;
      std::error_code ec;
      fs::remove(path, ec);
      if (it != frames_.end() && it->second.bat == nullptr) {
        if (!it->second.name.empty()) by_name_.erase(it->second.name);
        ++counters_.evictions;  // frame leaves the store
        --counters_.frames_spilled;
        frames_.erase(it);
        interest_.Forget(id);
      }
      return Status::Corruption("spill image of fragment " + std::to_string(id) +
                                " is damaged (" + read.status().message() +
                                "); re-fetch it from the ring");
    }
    if (it == frames_.end()) {
      // Dropped while faulting in; hand the payload to this caller anyway —
      // pins on dropped frames are no-ops, the data itself is still valid.
      return *read;
    }
    Frame& g = it->second;
    if (g.bat != nullptr) continue;  // raced with a re-admission
    Status room = MakeRoomLocked(lock, bytes, deadline);
    if (!room.ok()) return room;
    it = frames_.find(id);
    if (it == frames_.end()) return *read;
    Frame& h = it->second;
    if (h.bat == nullptr) {
      h.bat = *read;
      resident_bytes_ += h.bytes;
      ++counters_.frames_resident;
      --counters_.frames_spilled;
      ++counters_.promotions;
      counters_.promotion_bytes += h.bytes;
    }
    if (take_pin) ++h.pins;
    if (version != nullptr) *version = h.version;
    return h.bat;
  }
}

Result<bat::BatPtr> FragmentStore::Pin(core::BatId id,
                                       std::chrono::steady_clock::time_point deadline,
                                       uint64_t* version) {
  return PinInternal(id, deadline, /*take_pin=*/true, version);
}

Result<bat::BatPtr> FragmentStore::TryPinResident(core::BatId id, uint64_t* version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("fragment " + std::to_string(id) + " not in the store");
  }
  Frame& f = it->second;
  if (f.bat == nullptr) {
    return Status::FailedPrecondition("fragment " + std::to_string(id) +
                                      " is spilled; pin must fault it in");
  }
  interest_.Touch(id, NowSeconds());
  ++f.pins;
  if (version != nullptr) *version = f.version;
  return f.bat;
}

Result<uint64_t> FragmentStore::VersionOf(core::BatId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("fragment " + std::to_string(id) + " not in the store");
  }
  return it->second.version;
}

void FragmentStore::Unpin(core::BatId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (f.pins == 0) return;
  if (--f.pins == 0) space_cv_.notify_all();
}

Result<bat::BatPtr> FragmentStore::GetByName(const std::string& name) {
  core::BatId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      return Status::NotFound("no BAT named '" + name + "'");
    }
    id = it->second;
  }
  return PinInternal(id, std::chrono::steady_clock::time_point::max(),
                     /*take_pin=*/false);
}

Result<bat::BatPtr> FragmentStore::GetById(core::BatId id) {
  return PinInternal(id, std::chrono::steady_clock::time_point::max(),
                     /*take_pin=*/false);
}

Result<bat::BatPtr> FragmentStore::GetResident(core::BatId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end() || it->second.bat == nullptr) {
    return Status::NotFound("fragment " + std::to_string(id) + " not resident");
  }
  return it->second.bat;
}

bool FragmentStore::Contains(core::BatId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.count(id) != 0;
}

bool FragmentStore::IsSpilled(core::BatId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  return it != frames_.end() && it->second.bat == nullptr;
}

void FragmentStore::Drop(core::BatId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (f.bat != nullptr) {
    resident_bytes_ -= f.bytes;
    --counters_.frames_resident;
  } else {
    --counters_.frames_spilled;
  }
  if (f.spill_queued) {
    spill_queue_.erase(std::remove(spill_queue_.begin(), spill_queue_.end(), id),
                       spill_queue_.end());
    spill_queue_bytes_ = spill_queue_bytes_ >= f.bytes ? spill_queue_bytes_ - f.bytes : 0;
  }
  if (f.on_disk && !options_.spill_dir.empty()) {
    std::error_code ec;
    fs::remove(PathOf(f), ec);
  }
  if (!f.name.empty()) by_name_.erase(f.name);
  frames_.erase(it);
  interest_.Forget(id);
  space_cv_.notify_all();
}

void FragmentStore::NoteRingLoi(core::BatId id, double loi) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  it->second.ring_loi = loi;
}

void FragmentStore::NoteRefetched() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.refetched_from_ring;
}

void FragmentStore::NotePressureShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.pressure_sheds;
}

bool FragmentStore::UnderPressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.budget_bytes == 0) return false;
  const uint64_t high =
      static_cast<uint64_t>(options_.spill_high_watermark *
                            static_cast<double>(options_.budget_bytes));
  if (resident_bytes_ <= high) return false;
  // Above the high mark: pressure if there is no disk tier to absorb the
  // overhang, or the spill backlog has grown past the configured bound.
  if (options_.spill_dir.empty()) return true;
  return spill_queue_bytes_ > options_.max_spill_backlog_bytes;
}

FragmentStore::RecoveryReport FragmentStore::Recover() {
  RecoveryReport report;
  if (options_.spill_dir.empty()) return report;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(options_.spill_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".frag") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    SpillInfo info;
    auto decoded = ReadSpillFile(path, &info);
    if (!decoded.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.corrupt_spill_files;
      ++report.corrupt_files;
      std::error_code rec;
      fs::remove(path, rec);
      DCY_LOG(kWarn) << "fragment store recovery: deleting damaged spill file "
                    << path << ": " << decoded.status().ToString();
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (frames_.count(info.id) != 0) continue;  // already known; keep as is
    if (!info.name.empty() && by_name_.count(info.name) != 0) continue;
    Frame f;
    f.id = info.id;
    f.name = info.name;
    f.bytes = (*decoded)->ByteSize();
    f.durable = true;
    f.on_disk = true;  // payload stays on disk until first pin
    frames_.emplace(info.id, std::move(f));
    if (!info.name.empty()) by_name_.emplace(info.name, info.id);
    ++counters_.frames_spilled;
    ++counters_.recovered_from_disk;
    report.recovered.push_back(info);
  }
  return report;
}

void FragmentStore::ForgetAllForCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.clear();
  by_name_.clear();
  spill_queue_.clear();
  spill_queue_bytes_ = 0;
  resident_bytes_ = 0;
  counters_.frames_resident = 0;
  counters_.frames_spilled = 0;
  space_cv_.notify_all();
}

MemoryMetrics FragmentStore::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  MemoryMetrics m = counters_;
  m.budget_bytes = options_.budget_bytes;
  m.resident_bytes = resident_bytes_;
  m.spill_queue_depth = spill_queue_.size();
  m.spill_queue_bytes = spill_queue_bytes_;
  m.spilled_bytes = 0;
  m.pinned_bytes = 0;
  for (const auto& [id, f] : frames_) {
    if (f.bat == nullptr) m.spilled_bytes += f.bytes;
    if (f.bat != nullptr && f.pins > 0) m.pinned_bytes += f.bytes;
  }
  return m;
}

}  // namespace dcy::storage
