// The on-disk image of one spilled fragment: a versioned, checksummed
// envelope around the existing BAT wire encoding (bat/serialize.h).
//
//   [0]  u32 magic          kSpillMagic
//   [4]  u32 version        kSpillVersion
//   [8]  u64 bat_id
//   [16] u64 payload_bytes  length of the serialized-BAT frame
//   [24] u32 payload_crc    Crc32 over the payload bytes
//   [28] u32 name_len
//   [32] u32 meta_crc       Crc32 over bytes [0,32) XOR Crc32 over the name
//   [36] name bytes         qualified fragment name ("schema.table.column")
//   [..] payload            bat::Serialize frame (own magic/version/CRC)
//
// Every field that steers decoding is covered by a checksum, and the
// payload carries the serializer's CRC footer on top — any single byte
// flip, truncation, or trailing garbage decodes to Status::Corruption, so a
// torn or damaged spill file can never be served as data (the store re-homes
// the fragment from the ring instead). Writes go through a temp file plus
// rename, so a crash mid-write leaves either the old image or a garbage
// temp file, never a half-new file under the real name.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "bat/bat.h"
#include "common/status.h"
#include "core/types.h"

namespace dcy::storage {

constexpr uint32_t kSpillMagic = 0xDC5B111Fu;
constexpr uint32_t kSpillVersion = 1;
/// Fixed-size part of the envelope, before the name bytes.
constexpr size_t kSpillHeaderBytes = 36;

/// \brief Identity read back from a spill-file envelope.
struct SpillInfo {
  core::BatId id = core::kInvalidBat;
  std::string name;
  uint64_t payload_bytes = 0;
};

/// Encodes `b` into a complete spill-file image.
std::string EncodeSpillFile(core::BatId id, const std::string& name, const bat::Bat& b);

/// Decodes and fully verifies an image. Any damage — bad magic/version,
/// flipped header or name byte, wrong length, payload corruption — yields
/// Status::Corruption. `info` (optional) receives the envelope identity.
Result<bat::BatPtr> DecodeSpillFile(std::string_view image, SpillInfo* info);

/// Atomically replaces `path` with `image` (write temp + rename).
Status WriteSpillFile(const std::string& path, std::string_view image);

/// Reads and decodes `path`. NotFound when the file is absent; Corruption
/// for any damaged content.
Result<bat::BatPtr> ReadSpillFile(const std::string& path, SpillInfo* info);

/// Canonical file name of a fragment's spill image ("<id>.frag").
std::string SpillFileName(core::BatId id);

}  // namespace dcy::storage
