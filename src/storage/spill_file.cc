#include "storage/spill_file.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "bat/serialize.h"

namespace dcy::storage {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

Status Corrupt(const std::string& what) {
  return Status::Corruption("spill file: " + what);
}

}  // namespace

std::string EncodeSpillFile(core::BatId id, const std::string& name, const bat::Bat& b) {
  const std::string payload = bat::Serialize(b);
  std::string out;
  out.reserve(kSpillHeaderBytes + name.size() + payload.size());
  PutU32(&out, kSpillMagic);
  PutU32(&out, kSpillVersion);
  PutU64(&out, id);
  PutU64(&out, payload.size());
  PutU32(&out, bat::Crc32(payload.data(), payload.size()));
  PutU32(&out, static_cast<uint32_t>(name.size()));
  PutU32(&out, bat::Crc32(out.data(), out.size()) ^ bat::Crc32(name.data(), name.size()));
  out.append(name);
  out.append(payload);
  return out;
}

Result<bat::BatPtr> DecodeSpillFile(std::string_view image, SpillInfo* info) {
  if (image.size() < kSpillHeaderBytes) return Corrupt("truncated header");
  const char* p = image.data();
  if (GetU32(p) != kSpillMagic) return Corrupt("bad magic");
  if (GetU32(p + 4) != kSpillVersion) return Corrupt("unsupported version");
  const uint64_t bat_id = GetU64(p + 8);
  const uint64_t payload_bytes = GetU64(p + 16);
  const uint32_t payload_crc = GetU32(p + 24);
  const uint32_t name_len = GetU32(p + 28);
  const uint32_t meta_crc = GetU32(p + 32);
  if (kSpillHeaderBytes + static_cast<uint64_t>(name_len) > image.size()) {
    return Corrupt("name extends past the file");
  }
  const char* name_ptr = p + kSpillHeaderBytes;
  // The meta CRC covers every field above it plus the name bytes: a flip in
  // any length/id field is caught here, before those fields steer anything.
  if ((bat::Crc32(p, kSpillHeaderBytes - 4) ^ bat::Crc32(name_ptr, name_len)) !=
      meta_crc) {
    return Corrupt("header checksum mismatch");
  }
  if (kSpillHeaderBytes + static_cast<uint64_t>(name_len) + payload_bytes !=
      image.size()) {
    return Corrupt("length mismatch (truncated or trailing bytes)");
  }
  const char* payload = name_ptr + name_len;
  if (bat::Crc32(payload, payload_bytes) != payload_crc) {
    return Corrupt("payload checksum mismatch");
  }
  auto decoded = bat::Deserialize(std::string_view(payload, payload_bytes));
  if (!decoded.ok()) {
    // The serializer's own verification failed; surface it uniformly as
    // Corruption so callers have exactly one damaged-file code to handle.
    return Corrupt("payload decode failed: " + decoded.status().message());
  }
  if (info != nullptr) {
    info->id = static_cast<core::BatId>(bat_id);
    info->name.assign(name_ptr, name_len);
    info->payload_bytes = payload_bytes;
  }
  return decoded;
}

Status WriteSpillFile(const std::string& path, std::string_view image) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::IOError("short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot rename " + tmp + " into place");
  }
  return Status::OK();
}

Result<bat::BatPtr> ReadSpillFile(const std::string& path, SpillInfo* info) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return Status::NotFound("no spill file at " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string image(static_cast<size_t>(size), '\0');
  in.read(image.data(), size);
  if (!in.good()) return Corrupt("short read from " + path);
  return DecodeSpillFile(image, info);
}

std::string SpillFileName(core::BatId id) { return std::to_string(id) + ".frag"; }

}  // namespace dcy::storage
