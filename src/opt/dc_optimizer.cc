#include "opt/dc_optimizer.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/logging.h"

namespace dcy::opt {

using mal::Arg;
using mal::Instruction;
using mal::Program;

Result<Program> DcOptimize(const Program& program, const DcOptimizerOptions& options) {
  // Pass 1: find the binds, in plan order.
  struct BindInfo {
    std::string bound_var;    // original bind output (becomes the pin output)
    std::string request_var;  // fresh handle variable
    Instruction request;      // rewritten request call
    size_t first_use = SIZE_MAX;
    size_t last_use = 0;
    bool pinned = false;
  };
  std::vector<BindInfo> binds;
  std::map<std::string, size_t> bind_of_var;

  int next_var = program.MaxVarNumber() + 1;
  for (size_t i = 0; i < program.instructions.size(); ++i) {
    const Instruction& ins = program.instructions[i];
    if (ins.FullName() != "sql.bind") continue;
    if (ins.ret.empty()) {
      return Status::InvalidArgument("sql.bind without a return variable");
    }
    if (bind_of_var.count(ins.ret) > 0) {
      return Status::InvalidArgument("variable " + ins.ret + " bound twice");
    }
    BindInfo info;
    info.bound_var = ins.ret;
    info.request_var = "X" + std::to_string(next_var++);
    info.request.ret = info.request_var;
    info.request.module = "datacyclotron";
    info.request.fn = "request";
    info.request.args = ins.args;  // same (schema, table, column, kind)
    bind_of_var[ins.ret] = binds.size();
    binds.push_back(std::move(info));
  }
  if (binds.empty()) return program;  // nothing to do

  // Pass 2: locate first/last uses of every bound variable.
  for (size_t i = 0; i < program.instructions.size(); ++i) {
    const Instruction& ins = program.instructions[i];
    if (ins.FullName() == "sql.bind") continue;
    for (const Arg& a : ins.args) {
      if (!a.is_var()) continue;
      auto it = bind_of_var.find(a.var);
      if (it == bind_of_var.end()) continue;
      BindInfo& info = binds[it->second];
      info.first_use = std::min(info.first_use, i);
      info.last_use = std::max(info.last_use, i);
    }
  }

  // Pass 3: emit — requests hoisted to the top in bind order, then the body
  // with pins before first uses (and unpins after last uses if requested).
  Program out;
  out.name = program.name;
  std::vector<std::string> unpin_order;  // pin order, for the plan-end unpins

  for (const BindInfo& info : binds) out.instructions.push_back(info.request);

  for (size_t i = 0; i < program.instructions.size(); ++i) {
    const Instruction& ins = program.instructions[i];
    if (ins.FullName() == "sql.bind") continue;
    // Inject pins for any bound variable first used here.
    for (BindInfo& info : binds) {
      if (info.first_use == i && !info.pinned) {
        Instruction pin;
        pin.ret = info.bound_var;
        pin.module = "datacyclotron";
        pin.fn = "pin";
        pin.args.push_back(Arg::Var(info.request_var));
        out.instructions.push_back(std::move(pin));
        info.pinned = true;
        unpin_order.push_back(info.bound_var);
      }
    }
    out.instructions.push_back(ins);
    if (options.unpin_placement == DcOptimizerOptions::UnpinPlacement::kAfterLastUse) {
      for (const BindInfo& info : binds) {
        if (info.last_use == i && info.pinned) {
          Instruction unpin;
          unpin.module = "datacyclotron";
          unpin.fn = "unpin";
          unpin.args.push_back(Arg::Var(info.bound_var));
          out.instructions.push_back(std::move(unpin));
        }
      }
    }
  }

  if (options.unpin_placement == DcOptimizerOptions::UnpinPlacement::kPlanEnd) {
    for (const std::string& var : unpin_order) {
      Instruction unpin;
      unpin.module = "datacyclotron";
      unpin.fn = "unpin";
      unpin.args.push_back(Arg::Var(var));
      out.instructions.push_back(std::move(unpin));
    }
  }
  return out;
}

std::string PlanCacheKey(const std::string& text, bool optimize,
                         const DcOptimizerOptions& options, const char* dialect) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;  // FNV prime
  };
  for (const char* d = dialect; *d != '\0'; ++d) mix(static_cast<uint8_t>(*d));
  mix(0);  // dialect/text separator: ("ab", "c") never collides with ("a", "bc")
  for (char c : text) mix(static_cast<uint8_t>(c));
  mix(optimize ? 1 : 0);
  mix(static_cast<uint8_t>(options.unpin_placement));
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s-%zu-%016llx", dialect, text.size(),
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace dcy::opt
