// The Data Cyclotron plan rewriter (paper §4.1, Tables 1-2):
//   * every sql.bind is replaced by a datacyclotron.request hoisted to the
//     top of the plan (a fresh variable holds the request handle),
//   * a datacyclotron.pin is injected immediately before the first use of
//     each bound variable (the pin reuses the original variable name, so
//     the rest of the plan is untouched),
//   * a datacyclotron.unpin is injected after the last use — by default at
//     the end of the plan, exactly as the paper's Table 2 does (results may
//     alias the pinned fragments until exported).
#pragma once

#include "common/status.h"
#include "mal/program.h"

namespace dcy::opt {

struct DcOptimizerOptions {
  /// Where to place unpin() calls:
  enum class UnpinPlacement {
    kPlanEnd,        ///< before `end`, as in the paper's Table 2 (default)
    kAfterLastUse,   ///< immediately after the last instruction using the BAT
  };
  UnpinPlacement unpin_placement = UnpinPlacement::kPlanEnd;
};

/// Rewrites `program`; plans without sql.bind calls are returned unchanged.
Result<mal::Program> DcOptimize(const mal::Program& program,
                                const DcOptimizerOptions& options = {});

/// \brief Stable cache key for a prepared plan: identifies the
/// (text, dialect, optimize, optimizer-options) tuple that fully determines
/// the compiled program, so runtimes can reuse one parse + DcOptimize across
/// executions and sessions. Conservative: texts differing only in
/// whitespace/comments hash to different keys (a cache miss, never a wrong
/// plan). 64-bit FNV-1a plus the input length. `dialect` names the source
/// language ("mal", "sql", ...) and is mixed into both the hash and the
/// key prefix, so identical text submitted in two languages can never share
/// one cache slot.
std::string PlanCacheKey(const std::string& text, bool optimize,
                         const DcOptimizerOptions& options = {},
                         const char* dialect = "mal");

}  // namespace dcy::opt
