// Process-wide work-stealing task executor: the substrate for morsel-driven
// parallel kernels (bat/kernels.h) and dataflow plan execution
// (mal::Interpreter::RunDataflow). One fixed pool of worker threads serves
// every concurrent query session on the ring, so parallel queries share
// cores instead of oversubscribing the machine with per-query thread pools
// (the paper's §4.1 "concurrent interpreter threads" on a shared engine).
//
// Design:
//  - `workers` primary threads, each with its own LIFO deque. External
//    Submit() lands in a global injection queue; a worker prefers its own
//    deque (cache-hot morsels), then the injection queue, then steals the
//    oldest task of a sibling.
//  - A matching set of *reserve* threads parks until a task announces it is
//    about to block (Executor::BlockingScope around `datacyclotron.pin`
//    stalls). While k tasks sit in blocking sections, k reserves run the
//    normal worker loop so runnable morsels are never starved by a pinned
//    plan. All threads are created once in the constructor: steady-state
//    query traffic creates zero threads (see ExecutorMetrics).
//  - ParallelFor() is the morsel driver: the *calling* thread claims morsels
//    from an atomic cursor alongside helper tasks submitted to the pool, so
//    a saturated executor degrades to sequential execution on the caller
//    instead of deadlocking (nested parallelism is safe for the same
//    reason).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dcy::exec {

/// \brief Tuning knobs for the morsel-driven parallel kernels. Process-wide
/// (see GetExecPolicy/SetExecPolicy); RingCluster::Options and the bench
/// --workers/--morsel_rows flags feed it.
struct ExecPolicy {
  /// Max threads cooperating on one kernel (caller included).
  /// 0 = all executor workers; 1 = force the sequential path.
  size_t workers = 0;
  /// Rows per morsel (the stealing granule).
  size_t morsel_rows = 64 * 1024;
  /// Inputs below this row count take the sequential kernel unchanged, so
  /// small BATs pay zero parallelism overhead.
  size_t min_parallel_rows = 128 * 1024;
  /// Radix partitions for the parallel hash-table build
  /// (bat::kernels::PartitionedTable). 0 derives the count from the
  /// effective worker count; 1 forces the sequential single-table build.
  /// The build rounds the value down to a power of two and keeps
  /// partitions coarse relative to morsel_rows.
  size_t join_partitions = 0;
};

/// Reads/replaces the process-wide kernel policy (atomic snapshot).
ExecPolicy GetExecPolicy();
void SetExecPolicy(const ExecPolicy& policy);

/// RAII policy override for tests and benches (restores on destruction).
class ScopedExecPolicy {
 public:
  explicit ScopedExecPolicy(const ExecPolicy& policy) : saved_(GetExecPolicy()) {
    SetExecPolicy(policy);
  }
  ~ScopedExecPolicy() { SetExecPolicy(saved_); }
  ScopedExecPolicy(const ScopedExecPolicy&) = delete;
  ScopedExecPolicy& operator=(const ScopedExecPolicy&) = delete;

 private:
  ExecPolicy saved_;
};

/// \brief Lifetime counters (monotonic). `threads_created` must stay flat
/// under steady-state query traffic — asserted in runtime_test.
struct ExecutorMetrics {
  uint64_t threads_created = 0;  ///< OS threads ever spawned by the executor
  uint64_t tasks_executed = 0;   ///< tasks + morsel batches run to completion
  uint64_t tasks_stolen = 0;     ///< tasks taken from a sibling's deque
  uint64_t blocking_sections = 0;  ///< BlockingScope entries
};

class Executor {
 public:
  using Task = std::function<void()>;

  /// `workers` primary threads (0 = hardware concurrency, min 1). The same
  /// number of reserve threads is created parked.
  explicit Executor(size_t workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide executor every subsystem shares. Created on first use;
  /// lives until process exit.
  static Executor& Default();

  /// Enqueues `task`. Every submitted task is invoked exactly once: tasks
  /// still queued at destruction run inline on the destructing thread, so
  /// completion bookkeeping (latches, counters) never strands a waiter.
  void Submit(Task task);

  /// Morsel-driven parallel loop: splits [0, n) into `grain`-sized morsels
  /// and runs `body(begin, end)` for each, cooperatively on the calling
  /// thread plus up to `max_workers - 1` pool helpers (0 = all workers).
  /// Returns after every morsel completed. Safe to call from inside a task
  /// (nested) and from non-pool threads; with max_workers <= 1 it runs
  /// sequentially inline.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t begin, size_t end)>& body,
                   size_t max_workers = 0);

  /// \brief Announces that the current task is about to block on an external
  /// event (e.g. a ring pin future). While any scope is open, parked reserve
  /// threads take over the blocked capacity so runnable tasks keep flowing.
  class BlockingScope {
   public:
    explicit BlockingScope(Executor& e = Executor::Default());
    ~BlockingScope();
    BlockingScope(const BlockingScope&) = delete;
    BlockingScope& operator=(const BlockingScope&) = delete;

   private:
    Executor& executor_;
  };

  size_t workers() const { return num_workers_; }
  ExecutorMetrics metrics() const;

  // (see also exec::PartitionedReduce below — the map/reduce companion of
  // ParallelFor for kernels that merge per-partition partials.)

 private:
  struct WorkerState {
    std::mutex mu;
    std::deque<Task> deque;  // back = newest (owner pops back, thieves pop front)
  };

  void WorkerLoop(size_t index, bool reserve);
  /// Pops/steals one task; false when nothing is runnable right now.
  bool AcquireTask(size_t index, Task* out);
  /// Pushes to the current worker's deque when called from a pool thread,
  /// else to the injection queue; wakes a sleeper.
  void Push(Task task);

  size_t num_workers_ = 0;
  std::vector<std::unique_ptr<WorkerState>> states_;  // primaries only
  std::vector<std::thread> threads_;                  // primaries + reserves

  std::mutex mu_;  ///< guards injection_, sleep/wake, stop_
  std::condition_variable cv_;
  std::deque<Task> injection_;
  bool stop_ = false;
  size_t sleepers_ = 0;

  std::atomic<size_t> pending_{0};  ///< queued tasks across all queues
  std::atomic<size_t> blocked_{0};  ///< open BlockingScopes
  std::atomic<uint64_t> threads_created_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> blocking_sections_{0};
};

/// Partitioned map/reduce on the shared executor: `map(p)` computes
/// partition p's partial result (a morsel of a kernel, a radix partition of
/// a hash build) in parallel — the caller participates, so a saturated pool
/// degrades to sequential execution — then `reduce(acc, partial)` folds the
/// partials into `init` on the calling thread in ascending partition order.
/// The deterministic fold order is the point: floating-point merges
/// associate identically for a fixed partition count, and order-carrying
/// merges (duplicate chains, morsel stitches) always see partition 0 first.
/// T must be default-constructible and movable.
template <typename T, typename MapFn, typename ReduceFn>
T PartitionedReduce(size_t parts, T init, const MapFn& map, const ReduceFn& reduce,
                    size_t max_workers = 0) {
  if (parts == 0) return init;
  if (parts == 1 || max_workers == 1) {
    for (size_t p = 0; p < parts; ++p) {
      T partial = map(p);
      reduce(init, partial);
    }
    return init;
  }
  std::vector<T> partials(parts);
  Executor::Default().ParallelFor(
      parts, 1,
      [&](size_t begin, size_t end) {
        for (size_t p = begin; p < end; ++p) partials[p] = map(p);
      },
      max_workers);
  for (T& partial : partials) reduce(init, partial);
  return init;
}

}  // namespace dcy::exec
