#include "exec/executor.h"

#include <algorithm>

namespace dcy::exec {

namespace {

// Kernel policy lives in atomics so queries and benches can read it without
// a lock on every operator call.
std::atomic<size_t> g_policy_workers{ExecPolicy{}.workers};
std::atomic<size_t> g_policy_morsel_rows{ExecPolicy{}.morsel_rows};
std::atomic<size_t> g_policy_min_parallel{ExecPolicy{}.min_parallel_rows};
std::atomic<size_t> g_policy_join_partitions{ExecPolicy{}.join_partitions};

constexpr size_t kNoIndex = static_cast<size_t>(-1);

// Which executor (and which of its deques) the current thread belongs to;
// lets Push() keep morsels on the spawning worker's deque.
thread_local Executor* tls_executor = nullptr;
thread_local size_t tls_index = kNoIndex;

}  // namespace

ExecPolicy GetExecPolicy() {
  ExecPolicy p;
  p.workers = g_policy_workers.load(std::memory_order_relaxed);
  p.morsel_rows = g_policy_morsel_rows.load(std::memory_order_relaxed);
  p.min_parallel_rows = g_policy_min_parallel.load(std::memory_order_relaxed);
  p.join_partitions = g_policy_join_partitions.load(std::memory_order_relaxed);
  return p;
}

void SetExecPolicy(const ExecPolicy& policy) {
  g_policy_workers.store(policy.workers, std::memory_order_relaxed);
  g_policy_morsel_rows.store(std::max<size_t>(1, policy.morsel_rows),
                             std::memory_order_relaxed);
  g_policy_min_parallel.store(policy.min_parallel_rows, std::memory_order_relaxed);
  g_policy_join_partitions.store(policy.join_partitions, std::memory_order_relaxed);
}

Executor::Executor(size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  num_workers_ = workers;
  // Primaries [0, W) plus parked reserves [W, 2W); every thread owns a deque
  // so nested submissions from a reserve stay stealable.
  states_.reserve(2 * workers);
  for (size_t i = 0; i < 2 * workers; ++i) {
    states_.push_back(std::make_unique<WorkerState>());
  }
  threads_.reserve(2 * workers);
  for (size_t i = 0; i < 2 * workers; ++i) {
    threads_created_.fetch_add(1, std::memory_order_relaxed);
    threads_.emplace_back([this, i] { WorkerLoop(i, /*reserve=*/i >= num_workers_); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Exactly-once contract: whatever is still queued runs here, single
  // threaded, so latch-style completions never strand a waiter.
  for (;;) {
    Task task;
    if (!AcquireTask(kNoIndex, &task)) break;
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

Executor& Executor::Default() {
  // Intentionally leaked: worker threads must stay joinable-free of static
  // destruction order (no task may observe a half-destroyed process).
  static Executor* instance = new Executor();
  return *instance;
}

void Executor::Push(Task task) {
  // pending_ is incremented before the task becomes visible to consumers
  // (pop decrements only after acquiring a task), so the counter can read
  // transiently high — a spurious wake — but never underflow.
  if (tls_executor == this && tls_index != kNoIndex) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(states_[tls_index]->mu);
    states_[tls_index]->deque.push_back(std::move(task));
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      // Shutdown escape hatch: run inline rather than dropping the task.
      lock.unlock();
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    injection_.push_back(std::move(task));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sleepers_ > 0) cv_.notify_all();
}

void Executor::Submit(Task task) { Push(std::move(task)); }

bool Executor::AcquireTask(size_t index, Task* out) {
  if (index != kNoIndex) {
    WorkerState& own = *states_[index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.deque.empty()) {
      *out = std::move(own.deque.back());
      own.deque.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!injection_.empty()) {
      *out = std::move(injection_.front());
      injection_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal the oldest task of a sibling (FIFO end: large, cold subtrees).
  const size_t start = index == kNoIndex ? 0 : index + 1;
  for (size_t k = 0; k < states_.size(); ++k) {
    const size_t victim = (start + k) % states_.size();
    if (victim == index) continue;
    WorkerState& s = *states_[victim];
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.deque.empty()) {
      *out = std::move(s.deque.front());
      s.deque.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Executor::WorkerLoop(size_t index, bool reserve) {
  tls_executor = this;
  tls_index = index;
  for (;;) {
    Task task;
    if (AcquireTask(index, &task)) {
      task();
      task = nullptr;  // release captures before sleeping
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    ++sleepers_;
    cv_.wait(lock, [&] {
      if (stop_) return true;
      if (pending_.load(std::memory_order_relaxed) == 0) return false;
      // Reserves run only while some task sits in a blocking section.
      return !reserve || blocked_.load(std::memory_order_relaxed) > 0;
    });
    --sleepers_;
    if (stop_) return;
  }
}

void Executor::ParallelFor(size_t n, size_t grain,
                           const std::function<void(size_t, size_t)>& body,
                           size_t max_workers) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t morsels = (n + grain - 1) / grain;
  const size_t cap = max_workers == 0 ? num_workers_ : max_workers;
  const size_t participants = std::min(morsels, cap);
  if (participants <= 1) {
    body(0, n);
    return;
  }

  struct LoopState {
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t morsels = 0;
    size_t n = 0;
    size_t grain = 0;
    // Borrowed from the caller's frame; guarded by the completion wait below
    // (helpers that start after completion see cursor >= morsels and never
    // touch it).
    const std::function<void(size_t, size_t)>* body = nullptr;
  };
  auto st = std::make_shared<LoopState>();
  st->morsels = morsels;
  st->n = n;
  st->grain = grain;
  st->body = &body;

  auto drain = [](const std::shared_ptr<LoopState>& s) {
    size_t ran = 0;
    for (;;) {
      const size_t m = s->cursor.fetch_add(1, std::memory_order_relaxed);
      if (m >= s->morsels) break;
      const size_t begin = m * s->grain;
      (*s->body)(begin, std::min(s->n, begin + s->grain));
      ++ran;
    }
    if (ran > 0 && s->done.fetch_add(ran) + ran == s->morsels) {
      std::lock_guard<std::mutex> lock(s->mu);  // pairs with the waiter's check
      s->cv.notify_all();
    }
  };

  for (size_t h = 0; h + 1 < participants; ++h) {
    Submit([st, drain] { drain(st); });
  }
  drain(st);  // the caller is a full participant: saturation cannot deadlock

  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&] { return st->done.load() == st->morsels; });
}

Executor::BlockingScope::BlockingScope(Executor& e) : executor_(e) {
  executor_.blocked_.fetch_add(1, std::memory_order_relaxed);
  executor_.blocking_sections_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(executor_.mu_);
  if (executor_.sleepers_ > 0) executor_.cv_.notify_all();
}

Executor::BlockingScope::~BlockingScope() {
  executor_.blocked_.fetch_sub(1, std::memory_order_relaxed);
}

ExecutorMetrics Executor::metrics() const {
  ExecutorMetrics m;
  m.threads_created = threads_created_.load(std::memory_order_relaxed);
  m.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  m.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  m.blocking_sections = blocking_sections_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace dcy::exec
