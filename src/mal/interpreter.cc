#include "mal/interpreter.h"

#include <condition_variable>
#include <mutex>

#include "common/logging.h"
#include "exec/executor.h"

namespace dcy::mal {

void Registry::Register(const std::string& full_name, BuiltinFn fn) {
  DCY_CHECK(fns_.emplace(full_name, std::move(fn)).second)
      << "duplicate builtin " << full_name;
}

const BuiltinFn* Registry::Find(const std::string& full_name) const {
  auto it = fns_.find(full_name);
  return it == fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::Names() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, _] : fns_) names.push_back(name);
  return names;
}

Result<Datum> Interpreter::ExecInstruction(const Instruction& ins,
                                           std::unordered_map<std::string, Datum>* vars) {
  const BuiltinFn* fn = registry_->Find(ins.FullName());
  if (fn == nullptr) return Status::Unimplemented("unknown MAL call " + ins.FullName());
  std::vector<Datum> args;
  args.reserve(ins.args.size());
  for (const Arg& a : ins.args) {
    if (a.is_var()) {
      auto it = vars->find(a.var);
      if (it == vars->end()) {
        return Status::FailedPrecondition("undefined variable " + a.var + " in " +
                                          ins.ToString());
      }
      args.push_back(it->second);
    } else {
      args.push_back(a.literal);
    }
  }
  auto result = (*fn)(context_, args);
  if (!result.ok()) {
    return Status(result.status().code(),
                  ins.ToString() + ": " + result.status().message());
  }
  return result;
}

Result<Datum> Interpreter::Execute(const Program& program, const ExecOptions& options) {
  if (options.workers <= 1) return RunSequential(program, options);
  return RunParallel(program, options);
}

Result<Datum> Interpreter::Run(const Program& program) {
  return RunSequential(program, ExecOptions{});
}

Result<Datum> Interpreter::RunSequential(const Program& program,
                                         const ExecOptions& options) {
  vars_.clear();
  if (options.params != nullptr) vars_ = *options.params;
  Datum last;
  for (const Instruction& ins : program.instructions) {
    if (options.cancel != nullptr) DCY_RETURN_NOT_OK(options.cancel->CheckLive());
    DCY_ASSIGN_OR_RETURN(Datum value, ExecInstruction(ins, &vars_));
    if (!ins.ret.empty()) {
      vars_[ins.ret] = value;
      last = std::move(value);
    }
  }
  return last;
}

std::vector<std::vector<size_t>> BuildDependencies(const Program& program) {
  const auto& ins = program.instructions;
  std::vector<std::vector<size_t>> deps(ins.size());
  std::unordered_map<std::string, size_t> last_writer;
  std::unordered_map<std::string, std::vector<size_t>> readers;

  for (size_t i = 0; i < ins.size(); ++i) {
    auto add_dep = [&](size_t from) {
      if (std::find(deps[i].begin(), deps[i].end(), from) == deps[i].end()) {
        deps[i].push_back(from);
      }
    };
    for (const Arg& a : ins[i].args) {
      if (!a.is_var()) continue;
      auto w = last_writer.find(a.var);
      if (w != last_writer.end()) add_dep(w->second);
      readers[a.var].push_back(i);
    }
    if (!ins[i].ret.empty()) {
      // True producer edge for future readers; also serialize against
      // earlier readers of the overwritten name (rare in SSA-ish MAL).
      for (size_t r : readers[ins[i].ret]) {
        if (r != i) add_dep(r);
      }
      last_writer[ins[i].ret] = i;
    } else if (!ins[i].args.empty() && ins[i].args[0].is_var()) {
      // Void calls mutate their first argument (sql.rsCol) or release it
      // (datacyclotron.unpin): order them after all earlier readers and
      // make them the variable's latest writer so later uses follow them.
      for (size_t r : readers[ins[i].args[0].var]) {
        if (r != i) add_dep(r);
      }
      last_writer[ins[i].args[0].var] = i;
    }
  }
  return deps;
}

Result<Datum> Interpreter::RunDataflow(const Program& program, size_t workers) {
  ExecOptions options;
  options.workers = workers;
  return Execute(program, options);
}

Result<Datum> Interpreter::RunParallel(const Program& program,
                                       const ExecOptions& options) {
  vars_.clear();
  if (options.params != nullptr) vars_ = *options.params;
  const CancelToken* cancel = options.cancel;
  const size_t workers = options.workers;

  const auto deps = BuildDependencies(program);
  const size_t n = program.instructions.size();
  std::vector<std::vector<size_t>> dependents(n);
  std::vector<size_t> missing(n, 0);
  for (size_t i = 0; i < n; ++i) {
    missing[i] = deps[i].size();
    for (size_t d : deps[i]) dependents[d].push_back(i);
  }

  // Dataflow state shared between the calling thread and helper tasks on the
  // process-wide executor. No per-query threads: helpers are plain tasks, so
  // concurrent query sessions share one worker pool (and steady-state
  // traffic creates zero threads — see ExecutorMetrics).
  struct Flow {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<size_t> ready;
    size_t completed = 0;
    size_t runners = 0;  ///< helper tasks submitted and not yet finished
    bool failed = false;
    Status first_error;
  } flow;
  for (size_t i = 0; i < n; ++i) {
    if (missing[i] == 0) flow.ready.push_back(i);
  }

  exec::Executor& executor = exec::Executor::Default();
  const size_t max_helpers = workers - 1;

  // Runs ready instructions until none remain (or the query failed).
  // Expects `lock` held; returns with it held.
  std::function<void(std::unique_lock<std::mutex>&)> pump;
  // Tops helper tasks up to min(max_helpers, outstanding ready work); call
  // with the lock held.
  auto spawn_helpers = [&] {
    while (flow.runners < max_helpers && flow.runners < flow.ready.size()) {
      ++flow.runners;
      executor.Submit([&] {
        std::unique_lock<std::mutex> lock(flow.mu);
        pump(lock);
        --flow.runners;
        flow.cv.notify_all();
      });
    }
  };
  pump = [&](std::unique_lock<std::mutex>& lock) {
    while (!flow.ready.empty() && !flow.failed) {
      if (cancel != nullptr) {
        Status live = cancel->CheckLive();
        if (!live.ok()) {
          flow.failed = true;
          flow.first_error = live;
          break;
        }
      }
      const size_t i = flow.ready.back();
      flow.ready.pop_back();
      // Copy argument bindings under the lock into a local map.
      std::unordered_map<std::string, Datum> local_args;
      for (const Arg& a : program.instructions[i].args) {
        if (a.is_var()) {
          auto it = vars_.find(a.var);
          if (it != vars_.end()) local_args.emplace(a.var, it->second);
        }
      }
      lock.unlock();
      Result<Datum> result = [&] {
        if (program.instructions[i].FullName() == "datacyclotron.pin") {
          // May stall until the fragment's next ring pass; announce it so
          // reserve workers backfill the blocked capacity.
          exec::Executor::BlockingScope blocking(executor);
          return ExecInstruction(program.instructions[i], &local_args);
        }
        return ExecInstruction(program.instructions[i], &local_args);
      }();
      lock.lock();
      if (!result.ok()) {
        if (!flow.failed) {
          flow.failed = true;
          flow.first_error = result.status();
        }
      } else {
        if (!program.instructions[i].ret.empty()) {
          vars_[program.instructions[i].ret] = std::move(result).value();
        }
        ++flow.completed;
        for (size_t d : dependents[i]) {
          if (--missing[d] == 0) flow.ready.push_back(d);
        }
        spawn_helpers();
      }
      flow.cv.notify_all();
    }
  };

  {
    std::unique_lock<std::mutex> lock(flow.mu);
    spawn_helpers();
    // The caller participates: a saturated executor degrades to sequential
    // execution on this thread instead of deadlocking the query.
    pump(lock);
    flow.cv.wait(lock, [&] {
      return flow.runners == 0 && (flow.failed || flow.completed == n);
    });
  }

  if (flow.failed) return flow.first_error;
  DCY_CHECK(flow.completed == n) << "dataflow execution stalled (cyclic dependencies?)";
  // Return the last assigned variable, matching sequential semantics.
  for (auto it = program.instructions.rbegin(); it != program.instructions.rend(); ++it) {
    if (!it->ret.empty()) return vars_[it->ret];
  }
  return Datum{};
}

}  // namespace dcy::mal
