// MAL plan execution: a builtin registry (sql.*, algebra.*, bat.*, aggr.*,
// group.*, batcalc.*, io.*, datacyclotron.*), a sequential interpreter, and
// a dataflow interpreter that runs independent instructions on a worker
// pool ("The MAL plan is executed using concurrent interpreter threads
// following the dataflow dependencies", paper §4.1).
#pragma once

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bat/catalog.h"
#include "common/status.h"
#include "mal/program.h"
#include "mal/value.h"

namespace dcy::mal {

/// \brief The Data Cyclotron integration surface of the interpreter: the
/// three calls the DcOptimizer injects (§4.1). The live runtime implements
/// this against its DcNode; plans executed locally leave it null and use
/// sql.bind directly.
class DcHooks {
 public:
  virtual ~DcHooks() = default;

  /// datacyclotron.request(schema, table, column, kind) -> handle.
  virtual Result<RequestHandle> Request(const std::string& schema, const std::string& table,
                                        const std::string& column, int64_t kind) = 0;
  /// datacyclotron.pin(handle) -> BAT; may block until the fragment passes.
  virtual Result<bat::BatPtr> Pin(const RequestHandle& handle) = 0;
  /// datacyclotron.unpin(pinned BAT or handle).
  virtual Status Unpin(const Datum& pinned) = 0;
};

/// \brief Everything builtins may touch during execution.
struct Context {
  bat::BatCatalog* catalog = nullptr;  ///< local persistent BATs (sql.bind)
  DcHooks* dc = nullptr;               ///< ring integration; null = local-only
  std::ostream* out = nullptr;         ///< io.stdout sink (null = discard)
};

using BuiltinFn = std::function<Result<Datum>(Context&, std::vector<Datum>&)>;

/// \brief Name -> builtin map. `Global()` holds every standard operator.
class Registry {
 public:
  void Register(const std::string& full_name, BuiltinFn fn);
  const BuiltinFn* Find(const std::string& full_name) const;
  std::vector<std::string> Names() const;

  /// The process-wide registry with all standard builtins installed.
  static const Registry& Global();

 private:
  std::map<std::string, BuiltinFn> fns_;
};

/// \brief Executes parsed programs.
class Interpreter {
 public:
  Interpreter(const Registry* registry, Context context)
      : registry_(registry), context_(context) {}

  /// Runs instructions in order. Returns the value of the last assigned
  /// variable (or nil).
  Result<Datum> Run(const Program& program);

  /// Runs with dataflow parallelism: up to `workers` instructions execute
  /// concurrently as tasks on the process-wide exec::Executor (the calling
  /// thread participates; no threads are created per query). Blocking pin()
  /// calls occupy only their task slot — the executor backfills the blocked
  /// capacity from its reserve pool. Falls back to sequential for
  /// workers <= 1.
  Result<Datum> RunDataflow(const Program& program, size_t workers);

  /// Variable bindings after the last Run (for tests/inspection).
  const std::unordered_map<std::string, Datum>& variables() const { return vars_; }

 private:
  Result<Datum> ExecInstruction(const Instruction& ins,
                                std::unordered_map<std::string, Datum>* vars);

  const Registry* registry_;
  Context context_;
  std::unordered_map<std::string, Datum> vars_;
};

/// Builds the dataflow dependency lists for a program: deps[i] = indices of
/// instructions that must complete before instruction i (producer edges,
/// pseudo-write edges for void calls, and anti-dependencies for unpin).
std::vector<std::vector<size_t>> BuildDependencies(const Program& program);

}  // namespace dcy::mal
