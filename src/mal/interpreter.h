// MAL plan execution: a builtin registry (sql.*, algebra.*, bat.*, aggr.*,
// group.*, batcalc.*, io.*, datacyclotron.*), a sequential interpreter, and
// a dataflow interpreter that runs independent instructions on a worker
// pool ("The MAL plan is executed using concurrent interpreter threads
// following the dataflow dependencies", paper §4.1).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bat/catalog.h"
#include "common/status.h"
#include "mal/program.h"
#include "mal/value.h"

namespace dcy::mal {

/// \brief Cooperative cancellation for one query execution. The interpreter
/// polls it between instructions; blocking builtins (datacyclotron.pin) use
/// the deadline for bounded waits and are woken by the embedder on Cancel().
///
/// Thread-safety: Cancel()/cancelled() are safe from any thread at any time.
/// The deadline is set once before execution starts (publication through the
/// submit path) and is read-only afterwards.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Absolute execution deadline; time_point::max() (the default) disables it.
  void set_deadline(std::chrono::steady_clock::time_point d) { deadline_ = d; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }
  bool has_deadline() const {
    return deadline_ != std::chrono::steady_clock::time_point::max();
  }
  bool expired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline_;
  }

  /// OK while the query may keep running; Aborted after Cancel(), TimedOut
  /// past the deadline.
  Status CheckLive() const {
    if (cancelled()) return Status::Aborted("query cancelled");
    if (expired()) return Status::TimedOut("query deadline expired");
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
};

/// \brief Capture sink for sql.exportResult: the builtin stores the exported
/// result set here (in addition to rendering into Context::out when bound),
/// so embedders get typed columns instead of re-parsing printed text.
/// Contract: one result set per plan — a plan calling sql.exportResult more
/// than once surfaces only the last export here (Context::out still receives
/// every rendering).
struct ExportSink {
  std::mutex mu;        ///< dataflow workers may export concurrently
  ResultSetPtr result;  ///< last exported result set (null = none yet)
};

/// \brief The Data Cyclotron integration surface of the interpreter: the
/// three calls the DcOptimizer injects (§4.1). The live runtime implements
/// this against its DcNode; plans executed locally leave it null and use
/// sql.bind directly.
class DcHooks {
 public:
  virtual ~DcHooks() = default;

  /// datacyclotron.request(schema, table, column, kind) -> handle.
  virtual Result<RequestHandle> Request(const std::string& schema, const std::string& table,
                                        const std::string& column, int64_t kind) = 0;
  /// datacyclotron.pin(handle) -> BAT; may block until the fragment passes.
  virtual Result<bat::BatPtr> Pin(const RequestHandle& handle) = 0;
  /// datacyclotron.unpin(pinned BAT or handle).
  virtual Status Unpin(const Datum& pinned) = 0;
};

/// \brief The write-path integration surface (ISSUE-9): the three builtins
/// SQL INSERT/DELETE compile to. The live runtime implements this against
/// the cluster WriteLog; executions without one reject writes with
/// FailedPrecondition. Implementations must be safe for concurrent calls
/// (dataflow workers buffer columns in parallel).
class WriteHooks {
 public:
  virtual ~WriteHooks() = default;

  /// sql.wappend(schema, table, column, v...): buffers one column of an
  /// INSERT statement. Returns a dataflow token chaining into sql.wcommit.
  virtual Result<int64_t> BufferColumn(const std::string& qualified_table,
                                       const std::string& column,
                                       std::vector<bat::Value> values) = 0;
  /// sql.wcommit(schema, table, nrows, tokens...): atomically commits every
  /// buffered column of `qualified_table` as one versioned write. Returns
  /// the number of rows inserted.
  virtual Result<int64_t> CommitInsert(const std::string& qualified_table,
                                       int64_t expected_rows) = 0;
  /// sql.wdelete(schema, table, positions): deletes the rows at the given
  /// positions (a mirror BAT of qualifying offsets into the query-snapshot
  /// view). Returns the number of rows deleted.
  virtual Result<int64_t> DeleteAt(const std::string& qualified_table,
                                   const bat::BatPtr& positions) = 0;
};

/// \brief Everything builtins may touch during execution.
struct Context {
  bat::FragmentSource* catalog = nullptr;  ///< local persistent BATs (sql.bind)
  DcHooks* dc = nullptr;               ///< ring integration; null = local-only
  WriteHooks* writer = nullptr;        ///< write path; null = read-only
  std::ostream* out = nullptr;         ///< io.stdout sink (null = discard)
  ExportSink* exported = nullptr;      ///< typed result capture (null = off)
};

using BuiltinFn = std::function<Result<Datum>(Context&, std::vector<Datum>&)>;

/// \brief Name -> builtin map. `Global()` holds every standard operator.
class Registry {
 public:
  void Register(const std::string& full_name, BuiltinFn fn);
  const BuiltinFn* Find(const std::string& full_name) const;
  std::vector<std::string> Names() const;

  /// The process-wide registry with all standard builtins installed.
  static const Registry& Global();

 private:
  std::map<std::string, BuiltinFn> fns_;
};

/// \brief Per-execution options: dataflow width, cooperative cancellation,
/// and parameter bindings for prepared plans.
struct ExecOptions {
  /// Instructions executing concurrently; <= 1 runs sequentially inline.
  size_t workers = 1;
  /// Polled between instructions; a tripped token fails the query with
  /// Aborted (Cancel) or TimedOut (deadline). Null = never stops.
  const CancelToken* cancel = nullptr;
  /// Initial variable bindings: a prepared plan may reference variables it
  /// never assigns (query parameters); they are seeded from here before the
  /// first instruction runs. Null = no parameters.
  const std::unordered_map<std::string, Datum>* params = nullptr;
};

/// \brief Executes parsed programs.
class Interpreter {
 public:
  Interpreter(const Registry* registry, Context context)
      : registry_(registry), context_(context) {}

  /// Runs `program` under `options` (sequentially for workers <= 1, else
  /// with dataflow parallelism). Returns the value of the last assigned
  /// variable (or nil).
  Result<Datum> Execute(const Program& program, const ExecOptions& options);

  /// Runs instructions in order (Execute with default options).
  Result<Datum> Run(const Program& program);

  /// Runs with dataflow parallelism: up to `workers` instructions execute
  /// concurrently as tasks on the process-wide exec::Executor (the calling
  /// thread participates; no threads are created per query). Blocking pin()
  /// calls occupy only their task slot — the executor backfills the blocked
  /// capacity from its reserve pool. Falls back to sequential for
  /// workers <= 1.
  Result<Datum> RunDataflow(const Program& program, size_t workers);

  /// Variable bindings after the last Run (for tests/inspection).
  const std::unordered_map<std::string, Datum>& variables() const { return vars_; }

 private:
  Result<Datum> RunSequential(const Program& program, const ExecOptions& options);
  Result<Datum> RunParallel(const Program& program, const ExecOptions& options);
  Result<Datum> ExecInstruction(const Instruction& ins,
                                std::unordered_map<std::string, Datum>* vars);

  const Registry* registry_;
  Context context_;
  std::unordered_map<std::string, Datum> vars_;
};

/// Builds the dataflow dependency lists for a program: deps[i] = indices of
/// instructions that must complete before instruction i (producer edges,
/// pseudo-write edges for void calls, and anti-dependencies for unpin).
std::vector<std::vector<size_t>> BuildDependencies(const Program& program);

}  // namespace dcy::mal
