// Runtime values flowing through MAL plan variables.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "bat/bat.h"
#include "core/types.h"

namespace dcy::mal {

/// \brief Handle returned by datacyclotron.request(): identifies the ring
/// fragment the plan will later pin.
struct RequestHandle {
  core::BatId bat = core::kInvalidBat;
  bool operator==(const RequestHandle& o) const { return bat == o.bat; }
};

/// \brief An oid literal (`0@0` in MAL text).
struct OidLit {
  bat::Oid value = 0;
  bool operator==(const OidLit& o) const { return value == o.value; }
};

/// \brief Sentinel for io.stdout() stream handles.
struct StreamHandle {
  int fd = 1;
  bool operator==(const StreamHandle& o) const { return fd == o.fd; }
};

/// \brief A result table under construction (sql.resultSet / sql.rsCol).
struct ResultSet {
  struct Column {
    std::string table;
    std::string name;
    std::string type;
    bat::BatPtr values;
  };
  std::vector<Column> columns;
};
using ResultSetPtr = std::shared_ptr<ResultSet>;

/// \brief A MAL variable's value.
using Datum = std::variant<std::monostate, int64_t, double, std::string, OidLit,
                           bat::BatPtr, RequestHandle, StreamHandle, ResultSetPtr>;

/// Human-readable tag for diagnostics.
const char* DatumKind(const Datum& d);

/// Renders a datum as MAL literal text where possible.
std::string DatumToString(const Datum& d);

}  // namespace dcy::mal
