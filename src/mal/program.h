// Parsed MAL plan representation + parser for the textual syntax used in
// the paper's Tables 1 and 2:
//
//   function user.s1_2():void;
//   X1 := sql.bind("sys","t","id",0);
//   ...
//   sql.exportResult(X22,X16);
//   end s1_2;
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/parse_error.h"
#include "common/status.h"
#include "mal/value.h"

namespace dcy::mal {

/// An instruction argument: a variable reference or a literal.
struct Arg {
  enum class Kind { kVar, kLiteral };
  Kind kind = Kind::kLiteral;
  std::string var;  // kVar
  Datum literal;    // kLiteral

  static Arg Var(std::string name) {
    Arg a;
    a.kind = Kind::kVar;
    a.var = std::move(name);
    return a;
  }
  static Arg Lit(Datum d) {
    Arg a;
    a.kind = Kind::kLiteral;
    a.literal = std::move(d);
    return a;
  }
  bool is_var() const { return kind == Kind::kVar; }
};

/// One MAL statement: `ret := module.fn(args...)` (ret may be empty).
struct Instruction {
  std::string ret;  // empty for void calls
  std::string module;
  std::string fn;
  std::vector<Arg> args;

  std::string FullName() const { return module + "." + fn; }
  std::string ToString() const;
};

/// A parsed MAL function body.
struct Program {
  std::string name;  // e.g. "user.s1_2"
  std::vector<Instruction> instructions;

  /// Regenerates MAL text (used to print optimizer output, cf. Table 2).
  std::string ToString() const;

  /// Highest numeric suffix among variables named X<n>; 0 if none. The
  /// DcOptimizer allocates fresh variables above it.
  int MaxVarNumber() const;
};

/// Parses MAL text into a Program. Accepts `#` comments and blank lines.
/// On failure the returned Status renders the diagnostic, and when `error`
/// is non-null it receives the structured ParseError (line, column,
/// offending token, caret-annotated snippet) for clients that render their
/// own messages.
Result<Program> ParseProgram(const std::string& text, ParseError* error = nullptr);

/// \brief Structural (alpha-) equivalence: same instruction sequence with a
/// consistent variable renaming. Used to compare optimizer output against
/// the paper's Table 2 regardless of fresh-variable numbering.
bool AlphaEquivalent(const Program& a, const Program& b, std::string* why = nullptr);

}  // namespace dcy::mal
