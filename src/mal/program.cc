#include "mal/program.h"

#include <cctype>
#include <map>

#include "common/logging.h"

namespace dcy::mal {

const char* DatumKind(const Datum& d) {
  switch (d.index()) {
    case 0: return "nil";
    case 1: return "int";
    case 2: return "dbl";
    case 3: return "str";
    case 4: return "oid";
    case 5: return "bat";
    case 6: return "request";
    case 7: return "stream";
    case 8: return "resultset";
  }
  return "?";
}

std::string DatumToString(const Datum& d) {
  if (std::holds_alternative<std::monostate>(d)) return "nil";
  if (const auto* i = std::get_if<int64_t>(&d)) return std::to_string(*i);
  if (const auto* f = std::get_if<double>(&d)) return std::to_string(*f);
  if (const auto* s = std::get_if<std::string>(&d)) return "\"" + *s + "\"";
  if (const auto* o = std::get_if<OidLit>(&d)) return std::to_string(o->value) + "@0";
  if (std::holds_alternative<bat::BatPtr>(d)) return "<bat>";
  if (const auto* r = std::get_if<RequestHandle>(&d)) {
    return "<request:" + std::to_string(r->bat) + ">";
  }
  if (std::holds_alternative<StreamHandle>(d)) return "<stream>";
  return "<resultset>";
}

std::string Instruction::ToString() const {
  std::string out;
  if (!ret.empty()) out += ret + " := ";
  out += FullName() + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].is_var() ? args[i].var : DatumToString(args[i].literal);
  }
  out += ");";
  return out;
}

std::string Program::ToString() const {
  std::string out = "function " + name + "():void;\n";
  for (const auto& ins : instructions) out += "    " + ins.ToString() + "\n";
  const size_t dot = name.find('.');
  out += "end " + (dot == std::string::npos ? name : name.substr(dot + 1)) + ";\n";
  return out;
}

int Program::MaxVarNumber() const {
  int max_n = 0;
  auto consider = [&max_n](const std::string& v) {
    if (v.size() >= 2 && v[0] == 'X') {
      bool digits = true;
      for (size_t i = 1; i < v.size(); ++i) digits = digits && std::isdigit(v[i]) != 0;
      if (digits) max_n = std::max(max_n, std::stoi(v.substr(1)));
    }
  };
  for (const auto& ins : instructions) {
    consider(ins.ret);
    for (const auto& a : ins.args) {
      if (a.is_var()) consider(a.var);
    }
  }
  return max_n;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Lexer {
  const std::string& text;
  size_t pos = 0;
  ParseError* err = nullptr;  ///< structured diagnostic sink (may be null)

  explicit Lexer(const std::string& t, ParseError* e) : text(t), err(e) {}

  /// The token starting at `at` (a word, a number, or one character), for
  /// diagnostics; empty at end of input.
  std::string TokenAt(size_t at) const {
    if (at >= text.size()) return "";
    const auto alnum = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    };
    size_t end = at + 1;
    if (alnum(text[at])) {
      while (end < text.size() && alnum(text[end])) ++end;
    }
    return text.substr(at, end - at);
  }

  /// Records a ParseError at the current position and returns the matching
  /// InvalidArgument status.
  Status Fail(std::string message) {
    SkipWs();
    return ParseFail(err, ParseError::At(text, pos, TokenAt(pos), std::move(message)));
  }

  void SkipWs() {
    while (pos < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else if (text[pos] == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool Eof() {
    SkipWs();
    return pos >= text.size();
  }

  char Peek() {
    SkipWs();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    SkipWs();
    const size_t n = std::string(w).size();
    if (text.compare(pos, n, w) == 0) {
      const char after = pos + n < text.size() ? text[pos + n] : '\0';
      if (!std::isalnum(static_cast<unsigned char>(after)) && after != '_') {
        pos += n;
        return true;
      }
    }
    return false;
  }

  Result<std::string> Ident() {
    SkipWs();
    if (pos >= text.size() ||
        (!std::isalpha(static_cast<unsigned char>(text[pos])) && text[pos] != '_')) {
      return Fail("expected identifier");
    }
    size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_')) {
      ++pos;
    }
    return text.substr(start, pos - start);
  }

  Result<Datum> Literal() {
    SkipWs();
    if (pos >= text.size()) return Fail("expected literal at end of input");
    const char c = text[pos];
    if (c == '"') {
      const size_t open = pos;
      ++pos;
      std::string s;
      while (pos < text.size() && text[pos] != '"') {
        if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
        s += text[pos++];
      }
      if (pos >= text.size()) {
        return ParseFail(err, ParseError::At(text, open, "\"", "unterminated string"));
      }
      ++pos;  // closing quote
      return Datum(s);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      size_t start = pos;
      if (c == '-' || c == '+') ++pos;
      bool is_float = false;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.')) {
        if (text[pos] == '.') is_float = true;
        ++pos;
      }
      const std::string num = text.substr(start, pos - start);
      if (pos < text.size() && text[pos] == '@') {
        ++pos;  // oid literal: <n>@<base>
        while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
        return Datum(OidLit{static_cast<bat::Oid>(std::stoull(num))});
      }
      if (is_float) return Datum(std::stod(num));
      return Datum(static_cast<int64_t>(std::stoll(num)));
    }
    if (ConsumeWord("nil")) return Datum(std::monostate{});
    return Fail("expected a literal");
  }
};

Result<Instruction> ParseCall(Lexer& lex, std::string first_ident) {
  Instruction ins;
  // first_ident is either a return variable (followed by :=) or a module.
  lex.SkipWs();
  if (lex.text.compare(lex.pos, 2, ":=") == 0) {
    lex.pos += 2;
    ins.ret = std::move(first_ident);
    DCY_ASSIGN_OR_RETURN(ins.module, lex.Ident());
  } else {
    ins.module = std::move(first_ident);
  }
  if (!lex.Consume('.')) return lex.Fail("expected '.' after module name");
  DCY_ASSIGN_OR_RETURN(ins.fn, lex.Ident());
  if (!lex.Consume('(')) return lex.Fail("expected '(' in call");
  if (!lex.Consume(')')) {
    while (true) {
      const char c = lex.Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        DCY_ASSIGN_OR_RETURN(std::string ident, lex.Ident());
        if (ident == "nil") {
          ins.args.push_back(Arg::Lit(Datum(std::monostate{})));
        } else {
          ins.args.push_back(Arg::Var(std::move(ident)));
        }
      } else {
        DCY_ASSIGN_OR_RETURN(Datum lit, lex.Literal());
        ins.args.push_back(Arg::Lit(std::move(lit)));
      }
      if (lex.Consume(',')) continue;
      if (lex.Consume(')')) break;
      return lex.Fail("expected ',' or ')' in argument list");
    }
  }
  if (!lex.Consume(';')) return lex.Fail("expected ';' after call");
  return ins;
}

}  // namespace

Result<Program> ParseProgram(const std::string& text, ParseError* error) {
  Program prog;
  Lexer lex(text, error);

  // Optional header: function user.name(...):void;
  if (lex.ConsumeWord("function")) {
    DCY_ASSIGN_OR_RETURN(std::string mod, lex.Ident());
    if (!lex.Consume('.')) return lex.Fail("expected '.' in function name");
    DCY_ASSIGN_OR_RETURN(std::string fn, lex.Ident());
    prog.name = mod + "." + fn;
    // Skip the signature up to ';'.
    while (!lex.Eof() && lex.text[lex.pos] != ';') ++lex.pos;
    if (!lex.Consume(';')) return lex.Fail("expected ';' after signature");
  } else {
    prog.name = "user.main";
  }

  while (!lex.Eof()) {
    if (lex.ConsumeWord("end")) {
      // `end name;` — consume to ';' and stop.
      while (!lex.Eof() && lex.text[lex.pos] != ';') ++lex.pos;
      lex.Consume(';');
      break;
    }
    DCY_ASSIGN_OR_RETURN(std::string ident, lex.Ident());
    DCY_ASSIGN_OR_RETURN(Instruction ins, ParseCall(lex, std::move(ident)));
    prog.instructions.push_back(std::move(ins));
  }
  return prog;
}

bool AlphaEquivalent(const Program& a, const Program& b, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (a.instructions.size() != b.instructions.size()) {
    return fail("instruction count differs: " + std::to_string(a.instructions.size()) +
                " vs " + std::to_string(b.instructions.size()));
  }
  std::map<std::string, std::string> a2b, b2a;
  auto map_var = [&](const std::string& va, const std::string& vb) {
    auto ia = a2b.find(va);
    auto ib = b2a.find(vb);
    if (ia == a2b.end() && ib == b2a.end()) {
      a2b[va] = vb;
      b2a[vb] = va;
      return true;
    }
    return ia != a2b.end() && ib != b2a.end() && ia->second == vb && ib->second == va;
  };
  for (size_t i = 0; i < a.instructions.size(); ++i) {
    const Instruction& x = a.instructions[i];
    const Instruction& y = b.instructions[i];
    const std::string at = "instruction " + std::to_string(i) + " (" + x.ToString() + ")";
    if (x.FullName() != y.FullName()) return fail(at + ": call differs from " + y.ToString());
    if (x.ret.empty() != y.ret.empty()) return fail(at + ": return arity differs");
    if (!x.ret.empty() && !map_var(x.ret, y.ret)) return fail(at + ": return var clash");
    if (x.args.size() != y.args.size()) return fail(at + ": arg count differs");
    for (size_t k = 0; k < x.args.size(); ++k) {
      if (x.args[k].is_var() != y.args[k].is_var()) return fail(at + ": arg kind differs");
      if (x.args[k].is_var()) {
        if (!map_var(x.args[k].var, y.args[k].var)) return fail(at + ": var mapping clash");
      } else if (!(DatumToString(x.args[k].literal) == DatumToString(y.args[k].literal))) {
        return fail(at + ": literal differs");
      }
    }
  }
  return true;
}

}  // namespace dcy::mal
