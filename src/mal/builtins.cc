// Standard MAL builtins: the binary-algebra operators of the paper's plans
// plus the datacyclotron.* calls injected by the DcOptimizer.
#include <algorithm>
#include <ostream>

#include "bat/operators.h"
#include "common/logging.h"
#include "mal/interpreter.h"

namespace dcy::mal {

namespace {

using bat::BatPtr;
using bat::Value;

Status WrongArgs(const char* what) { return Status::InvalidArgument(what); }

Result<BatPtr> AsBat(const Datum& d) {
  if (const auto* b = std::get_if<BatPtr>(&d)) return *b;
  return Status::InvalidArgument(std::string("expected BAT, got ") + DatumKind(d));
}

Result<int64_t> AsInt(const Datum& d) {
  if (const auto* i = std::get_if<int64_t>(&d)) return *i;
  return Status::InvalidArgument(std::string("expected int, got ") + DatumKind(d));
}

Result<std::string> AsStr(const Datum& d) {
  if (const auto* s = std::get_if<std::string>(&d)) return *s;
  return Status::InvalidArgument(std::string("expected str, got ") + DatumKind(d));
}

Result<bat::Oid> AsOid(const Datum& d) {
  if (const auto* o = std::get_if<OidLit>(&d)) return o->value;
  if (const auto* i = std::get_if<int64_t>(&d)) return static_cast<bat::Oid>(*i);
  return Status::InvalidArgument(std::string("expected oid, got ") + DatumKind(d));
}

/// Converts a literal datum to a bat::Value for selections/arithmetic.
Result<Value> AsValue(const Datum& d) {
  if (const auto* i = std::get_if<int64_t>(&d)) return Value::MakeLng(*i);
  if (const auto* f = std::get_if<double>(&d)) return Value::MakeDbl(*f);
  if (const auto* s = std::get_if<std::string>(&d)) return Value::MakeStr(*s);
  if (const auto* o = std::get_if<OidLit>(&d)) return Value::MakeOid(o->value);
  return Status::InvalidArgument(std::string("expected scalar, got ") + DatumKind(d));
}

Datum FromValue(const Value& v) {
  switch (v.type) {
    case bat::ValType::kDbl: return Datum(v.d);
    case bat::ValType::kStr: return Datum(v.s);
    case bat::ValType::kOid: return Datum(OidLit{static_cast<bat::Oid>(v.i)});
    default: return Datum(v.i);
  }
}

/// Adapts Result<BatPtr>(BatPtr) unary operators.
template <typename F>
BuiltinFn Unary(F f) {
  return [f](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 1) return WrongArgs("expected 1 argument");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    auto r = f(b);
    if (!r.ok()) return r.status();
    return Datum(r.value());
  };
}

/// Adapts Result<BatPtr>(BatPtr, BatPtr) binary operators.
template <typename F>
BuiltinFn Binary(F f) {
  return [f](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("expected 2 arguments");
    DCY_ASSIGN_OR_RETURN(BatPtr l, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(BatPtr r, AsBat(args[1]));
    auto out = f(l, r);
    if (!out.ok()) return out.status();
    return Datum(out.value());
  };
}

/// Adapts scalar aggregates.
template <typename F>
BuiltinFn Aggregate(F f) {
  return [f](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 1) return WrongArgs("expected 1 argument");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    auto r = f(b);
    if (!r.ok()) return r.status();
    return FromValue(r.value());
  };
}

BuiltinFn ArithBat(bat::ArithOp op) {
  return [op](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("expected 2 arguments");
    DCY_ASSIGN_OR_RETURN(BatPtr a, AsBat(args[0]));
    if (std::holds_alternative<BatPtr>(args[1])) {
      DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[1]));
      auto r = bat::Arith(a, b, op);
      if (!r.ok()) return r.status();
      return Datum(r.value());
    }
    DCY_ASSIGN_OR_RETURN(Value v, AsValue(args[1]));
    auto r = bat::ArithConst(a, v, op);
    if (!r.ok()) return r.status();
    return Datum(r.value());
  };
}

Registry BuildGlobalRegistry() {
  Registry reg;

  // --- sql / io -------------------------------------------------------------
  reg.Register("sql.bind", [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 4) return WrongArgs("sql.bind(schema,table,column,kind)");
    if (ctx.catalog == nullptr) return Status::FailedPrecondition("no catalog bound");
    DCY_ASSIGN_OR_RETURN(std::string schema, AsStr(args[0]));
    DCY_ASSIGN_OR_RETURN(std::string table, AsStr(args[1]));
    DCY_ASSIGN_OR_RETURN(std::string column, AsStr(args[2]));
    auto b = ctx.catalog->GetByName(schema + "." + table + "." + column);
    if (!b.ok()) return b.status();
    return Datum(b.value());
  });

  reg.Register("sql.resultSet", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    // sql.resultSet(#cols, #rows-hint, first-col-bat): create an empty
    // result set; sql.rsCol attaches columns.
    if (args.empty()) return WrongArgs("sql.resultSet(...)");
    return Datum(std::make_shared<ResultSet>());
  });

  reg.Register("sql.rsCol", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() < 7) return WrongArgs("sql.rsCol(rs,tbl,col,type,w,s,bat)");
    const auto* rs = std::get_if<ResultSetPtr>(&args[0]);
    if (rs == nullptr) return WrongArgs("sql.rsCol: first arg must be a result set");
    DCY_ASSIGN_OR_RETURN(std::string table, AsStr(args[1]));
    DCY_ASSIGN_OR_RETURN(std::string column, AsStr(args[2]));
    DCY_ASSIGN_OR_RETURN(std::string type, AsStr(args[3]));
    DCY_ASSIGN_OR_RETURN(BatPtr values, AsBat(args[6]));
    (*rs)->columns.push_back(ResultSet::Column{table, column, type, values});
    return Datum{};
  });

  reg.Register("io.stdout", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (!args.empty()) return WrongArgs("io.stdout()");
    return Datum(StreamHandle{1});
  });

  reg.Register("sql.exportResult", [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("sql.exportResult(stream,rs)");
    const auto* rs = std::get_if<ResultSetPtr>(&args[1]);
    if (rs == nullptr) return WrongArgs("sql.exportResult: second arg must be a result set");
    if (ctx.exported != nullptr) {
      std::lock_guard<std::mutex> lock(ctx.exported->mu);
      ctx.exported->result = *rs;
    }
    if (ctx.out != nullptr) {
      std::ostream& out = *ctx.out;
      for (size_t c = 0; c < (*rs)->columns.size(); ++c) {
        out << (c > 0 ? "\t" : "") << (*rs)->columns[c].table << "."
            << (*rs)->columns[c].name;
      }
      out << "\n";
      const size_t rows = (*rs)->columns.empty() ? 0 : (*rs)->columns[0].values->size();
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < (*rs)->columns.size(); ++c) {
          out << (c > 0 ? "\t" : "")
              << (*rs)->columns[c].values->tail()->GetValue(r).ToString();
        }
        out << "\n";
      }
    }
    return Datum{};
  });

  // --- bat / algebra ----------------------------------------------------------
  reg.Register("bat.reverse", Unary([](const BatPtr& b) -> Result<BatPtr> {
                 return bat::Reverse(b);
               }));
  reg.Register("bat.mirror", Unary([](const BatPtr& b) -> Result<BatPtr> {
                 return bat::Mirror(b);
               }));

  reg.Register("algebra.join", Binary(bat::Join));
  reg.Register("algebra.leftjoin", Binary(bat::LeftJoin));
  reg.Register("algebra.semijoin", Binary(bat::SemiJoin));
  reg.Register("algebra.kdiff", Binary(bat::KDiff));
  reg.Register("algebra.kunion", Binary(bat::KUnion));

  reg.Register("algebra.markT", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("algebra.markT(bat, base)");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(bat::Oid base, AsOid(args[1]));
    return Datum(bat::MarkT(b, base));
  });
  reg.Register("algebra.markH", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("algebra.markH(bat, base)");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(bat::Oid base, AsOid(args[1]));
    return Datum(bat::MarkH(b, base));
  });

  reg.Register("algebra.select", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() == 2) {
      DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
      DCY_ASSIGN_OR_RETURN(Value v, AsValue(args[1]));
      auto r = bat::Select(b, v);
      if (!r.ok()) return r.status();
      return Datum(r.value());
    }
    if (args.size() == 3) {
      DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
      DCY_ASSIGN_OR_RETURN(Value lo, AsValue(args[1]));
      DCY_ASSIGN_OR_RETURN(Value hi, AsValue(args[2]));
      auto r = bat::SelectRange(b, lo, hi);
      if (!r.ok()) return r.status();
      return Datum(r.value());
    }
    return WrongArgs("algebra.select(bat, v) or (bat, lo, hi)");
  });

  reg.Register("algebra.uselect", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("algebra.uselect(bat, v)");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(Value v, AsValue(args[1]));
    auto r = bat::USelect(b, v);
    if (!r.ok()) return r.status();
    return Datum(r.value());
  });

  reg.Register("algebra.thetaselect", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 3) return WrongArgs("algebra.thetaselect(bat, v, op)");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(Value v, AsValue(args[1]));
    DCY_ASSIGN_OR_RETURN(std::string cmp, AsStr(args[2]));
    bat::CmpOp op;
    if (cmp == "==" || cmp == "=") {
      op = bat::CmpOp::kEq;
    } else if (cmp == "!=" || cmp == "<>") {
      op = bat::CmpOp::kNe;
    } else if (cmp == "<") {
      op = bat::CmpOp::kLt;
    } else if (cmp == "<=") {
      op = bat::CmpOp::kLe;
    } else if (cmp == ">") {
      op = bat::CmpOp::kGt;
    } else if (cmp == ">=") {
      op = bat::CmpOp::kGe;
    } else {
      return Status::InvalidArgument("thetaselect: unknown comparator \"" + cmp + "\"");
    }
    auto r = bat::ThetaSelect(b, v, op);
    if (!r.ok()) return r.status();
    return Datum(r.value());
  });

  reg.Register("algebra.slice", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 3) return WrongArgs("algebra.slice(bat, lo, hi)");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(int64_t lo, AsInt(args[1]));
    DCY_ASSIGN_OR_RETURN(int64_t hi, AsInt(args[2]));
    if (lo < 0 || hi < 0) return Status::InvalidArgument("slice: negative bound");
    // MonetDB semantics: an over-long slice is the whole BAT, so plans may
    // say slice(b, 0, n) for LIMIT n without knowing the row count.
    const size_t clamped_hi = std::min<size_t>(static_cast<size_t>(hi), b->size());
    const size_t clamped_lo = std::min<size_t>(static_cast<size_t>(lo), clamped_hi);
    auto r = bat::Slice(b, clamped_lo, clamped_hi);
    if (!r.ok()) return r.status();
    return Datum(r.value());
  });

  reg.Register("algebra.sort", Unary([](const BatPtr& b) { return bat::Sort(b); }));

  reg.Register("algebra.topn", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2 && args.size() != 3) {
      return WrongArgs("algebra.topn(bat, n[, desc])");
    }
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(int64_t n, AsInt(args[1]));
    // Two-arg form keeps the historical bat::TopN default: largest first.
    bool descending = true;
    if (args.size() == 3) {
      DCY_ASSIGN_OR_RETURN(int64_t d, AsInt(args[2]));
      descending = d != 0;
    }
    auto r = bat::TopN(b, static_cast<size_t>(n), descending);
    if (!r.ok()) return r.status();
    return Datum(r.value());
  });

  reg.Register("algebra.project", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("algebra.project(bat, v)");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(Value v, AsValue(args[1]));
    return Datum(bat::ProjectConst(b, v));
  });

  // --- group / aggr -------------------------------------------------------------
  reg.Register("group.id", Unary([](const BatPtr& b) { return bat::GroupId(b); }));
  reg.Register("group.values", Unary([](const BatPtr& b) { return bat::GroupValues(b); }));
  reg.Register("group.refine", Binary(bat::GroupRefine));
  reg.Register("group.extents", Unary([](const BatPtr& g) { return bat::GroupExtents(g); }));

  reg.Register("aggr.count", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 1) return WrongArgs("aggr.count(bat)");
    DCY_ASSIGN_OR_RETURN(BatPtr b, AsBat(args[0]));
    return Datum(static_cast<int64_t>(bat::Count(b)));
  });
  reg.Register("aggr.sum", Aggregate([](const BatPtr& b) { return bat::Sum(b); }));
  reg.Register("aggr.min", Aggregate([](const BatPtr& b) { return bat::Min(b); }));
  reg.Register("aggr.max", Aggregate([](const BatPtr& b) { return bat::Max(b); }));
  reg.Register("aggr.avg", Aggregate([](const BatPtr& b) { return bat::Avg(b); }));

  reg.Register("aggr.sumPerGroup", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 3) return WrongArgs("aggr.sumPerGroup(values, gids, ngroups)");
    DCY_ASSIGN_OR_RETURN(BatPtr values, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(BatPtr gids, AsBat(args[1]));
    DCY_ASSIGN_OR_RETURN(int64_t n, AsInt(args[2]));
    auto r = bat::SumPerGroup(values, gids, static_cast<size_t>(n));
    if (!r.ok()) return r.status();
    return Datum(r.value());
  });
  reg.Register("aggr.countPerGroup", [](Context&, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2) return WrongArgs("aggr.countPerGroup(gids, ngroups)");
    DCY_ASSIGN_OR_RETURN(BatPtr gids, AsBat(args[0]));
    DCY_ASSIGN_OR_RETURN(int64_t n, AsInt(args[1]));
    auto r = bat::CountPerGroup(gids, static_cast<size_t>(n));
    if (!r.ok()) return r.status();
    return Datum(r.value());
  });
  const auto per_group_extreme = [](auto fn, const char* sig) {
    return [fn, sig](Context&, std::vector<Datum>& args) -> Result<Datum> {
      if (args.size() != 3) return WrongArgs(sig);
      DCY_ASSIGN_OR_RETURN(BatPtr values, AsBat(args[0]));
      DCY_ASSIGN_OR_RETURN(BatPtr gids, AsBat(args[1]));
      DCY_ASSIGN_OR_RETURN(int64_t n, AsInt(args[2]));
      auto r = fn(values, gids, static_cast<size_t>(n));
      if (!r.ok()) return r.status();
      return Datum(r.value());
    };
  };
  reg.Register("aggr.minPerGroup",
               per_group_extreme(bat::MinPerGroup, "aggr.minPerGroup(values, gids, ngroups)"));
  reg.Register("aggr.maxPerGroup",
               per_group_extreme(bat::MaxPerGroup, "aggr.maxPerGroup(values, gids, ngroups)"));

  // --- batcalc ---------------------------------------------------------------------
  reg.Register("batcalc.add", ArithBat(bat::ArithOp::kAdd));
  reg.Register("batcalc.sub", ArithBat(bat::ArithOp::kSub));
  reg.Register("batcalc.mul", ArithBat(bat::ArithOp::kMul));
  reg.Register("batcalc.div", ArithBat(bat::ArithOp::kDiv));

  // --- datacyclotron (§4.1) -----------------------------------------------------
  reg.Register("datacyclotron.request",
               [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
                 if (args.size() != 4) {
                   return WrongArgs("datacyclotron.request(schema,table,column,kind)");
                 }
                 if (ctx.dc == nullptr) {
                   return Status::FailedPrecondition("no Data Cyclotron bound");
                 }
                 DCY_ASSIGN_OR_RETURN(std::string schema, AsStr(args[0]));
                 DCY_ASSIGN_OR_RETURN(std::string table, AsStr(args[1]));
                 DCY_ASSIGN_OR_RETURN(std::string column, AsStr(args[2]));
                 DCY_ASSIGN_OR_RETURN(int64_t kind, AsInt(args[3]));
                 auto h = ctx.dc->Request(schema, table, column, kind);
                 if (!h.ok()) return h.status();
                 return Datum(h.value());
               });

  reg.Register("datacyclotron.pin",
               [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
                 if (args.size() != 1) return WrongArgs("datacyclotron.pin(handle)");
                 if (ctx.dc == nullptr) {
                   return Status::FailedPrecondition("no Data Cyclotron bound");
                 }
                 const auto* h = std::get_if<RequestHandle>(&args[0]);
                 if (h == nullptr) return WrongArgs("pin expects a request handle");
                 auto b = ctx.dc->Pin(*h);
                 if (!b.ok()) return b.status();
                 return Datum(b.value());
               });

  reg.Register("datacyclotron.unpin",
               [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
                 if (args.size() != 1) return WrongArgs("datacyclotron.unpin(bat)");
                 if (ctx.dc == nullptr) {
                   return Status::FailedPrecondition("no Data Cyclotron bound");
                 }
                 DCY_RETURN_NOT_OK(ctx.dc->Unpin(args[0]));
                 return Datum{};
               });

  // --- writes (ISSUE-9: versioned fragments + delta BATs) -----------------------
  // sql.wappend(schema, table, column, v...) -> token: buffers one INSERT
  // column. The returned token threads into sql.wcommit so the dataflow
  // interpreter orders every append before the commit.
  reg.Register("sql.wappend", [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() < 3) return WrongArgs("sql.wappend(schema,table,column,v...)");
    if (ctx.writer == nullptr) {
      return Status::FailedPrecondition("no write support in this execution context");
    }
    DCY_ASSIGN_OR_RETURN(std::string schema, AsStr(args[0]));
    DCY_ASSIGN_OR_RETURN(std::string table, AsStr(args[1]));
    DCY_ASSIGN_OR_RETURN(std::string column, AsStr(args[2]));
    std::vector<Value> values;
    values.reserve(args.size() - 3);
    for (size_t i = 3; i < args.size(); ++i) {
      DCY_ASSIGN_OR_RETURN(Value v, AsValue(args[i]));
      values.push_back(std::move(v));
    }
    auto token = ctx.writer->BufferColumn(schema + "." + table, column, std::move(values));
    if (!token.ok()) return token.status();
    return Datum(token.value());
  });

  // sql.wcommit(schema, table, nrows, tokens...) -> rows inserted. Commits
  // every buffered column of the table as one versioned write; the token
  // args exist purely as dataflow edges from the sql.wappend instructions.
  reg.Register("sql.wcommit", [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() < 3) return WrongArgs("sql.wcommit(schema,table,nrows,tokens...)");
    if (ctx.writer == nullptr) {
      return Status::FailedPrecondition("no write support in this execution context");
    }
    DCY_ASSIGN_OR_RETURN(std::string schema, AsStr(args[0]));
    DCY_ASSIGN_OR_RETURN(std::string table, AsStr(args[1]));
    DCY_ASSIGN_OR_RETURN(int64_t nrows, AsInt(args[2]));
    auto rows = ctx.writer->CommitInsert(schema + "." + table, nrows);
    if (!rows.ok()) return rows.status();
    return Datum(rows.value());
  });

  // sql.wdelete(schema, table, positions) -> rows deleted. `positions` is a
  // mirror BAT of qualifying offsets into the query-snapshot view (the same
  // shape the predicate machinery produces for selections).
  reg.Register("sql.wdelete", [](Context& ctx, std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 3) return WrongArgs("sql.wdelete(schema,table,positions)");
    if (ctx.writer == nullptr) {
      return Status::FailedPrecondition("no write support in this execution context");
    }
    DCY_ASSIGN_OR_RETURN(std::string schema, AsStr(args[0]));
    DCY_ASSIGN_OR_RETURN(std::string table, AsStr(args[1]));
    DCY_ASSIGN_OR_RETURN(BatPtr positions, AsBat(args[2]));
    auto rows = ctx.writer->DeleteAt(schema + "." + table, positions);
    if (!rows.ok()) return rows.status();
    return Datum(rows.value());
  });

  return reg;
}

}  // namespace

const Registry& Registry::Global() {
  static const Registry registry = BuildGlobalRegistry();
  return registry;
}

}  // namespace dcy::mal
