// Status / Result<T>: the error model used across the Data Cyclotron
// codebase. Follows the RocksDB/Arrow idiom: fallible functions return a
// Status (or Result<T>), never throw.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dcy {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kIOError,
  kCorruption,
  kTimedOut,
  kAborted,
  kUnavailable,
  kUnknown,
};

/// \brief Returns a short human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation). Functions that can fail
/// return Status; functions that can fail and produce a value return
/// Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// A resource (fragment, node, ring segment) is currently unreachable.
  /// Unlike NotFound this is transient: retrying after recovery may succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or a non-OK Status explaining why the
/// value is absent.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result must not hold an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace dcy

/// Propagates a non-OK Status to the caller; usable inside functions that
/// return Status.
#define DCY_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::dcy::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression, propagating the error or binding the
/// value to `lhs`.
#define DCY_ASSIGN_OR_RETURN(lhs, expr)          \
  auto DCY_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!DCY_CONCAT_(_res_, __LINE__).ok())        \
    return DCY_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(DCY_CONCAT_(_res_, __LINE__)).value()

#define DCY_CONCAT_IMPL_(a, b) a##b
#define DCY_CONCAT_(a, b) DCY_CONCAT_IMPL_(a, b)
