#include "common/status.h"

namespace dcy {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kUnknown: return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace dcy
