// Small statistics toolkit used by the experiment harnesses: running
// moments, histograms with fixed-width buckets, and time-series recorders
// that reproduce the per-second sampling the paper's figures plot.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace dcy {

/// \brief Welford running mean / variance / min / max accumulator.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-width-bucket histogram over [lo, hi); out-of-range samples
/// clamp into the edge buckets. Used e.g. for the Figure 6b lifetime
/// distribution.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void Add(double x) {
    stat_.Add(x);
    size_t idx;
    if (x < lo_) {
      idx = 0;
    } else if (x >= hi_) {
      idx = counts_.size() - 1;
    } else {
      idx = static_cast<size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
      idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
  }

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }
  double bucket_hi(size_t i) const { return bucket_lo(i + 1); }

  const RunningStat& stat() const { return stat_; }

  /// Linear-interpolated percentile in [0,100]; 0 with no samples.
  double Percentile(double p) const;

 private:
  double lo_, hi_;
  std::vector<uint64_t> counts_;
  RunningStat stat_;
};

/// \brief Records (t, value) samples of a named series; the benches print
/// these as the paper's figure series.
class TimeSeries {
 public:
  void Add(double t, double value) { points_.emplace_back(t, value); }
  const std::vector<std::pair<double, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Value of the last sample at or before time t (0 before first sample).
  double At(double t) const;

 private:
  std::vector<std::pair<double, double>> points_;
};

/// \brief A labelled bundle of TimeSeries, keyed by series name, printed as
/// aligned TSV (time column plus one column per series).
class SeriesTable {
 public:
  TimeSeries& Series(const std::string& name) { return series_[name]; }
  const std::map<std::string, TimeSeries>& all() const { return series_; }

  /// Renders the table sampled at a fixed step over [t0, t1].
  std::string ToTsv(double t0, double t1, double step) const;

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace dcy
