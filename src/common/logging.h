// Minimal leveled logger + assertion macros shared by the library.
// Intentionally tiny: the library is often embedded in a simulator hot loop,
// so disabled levels must cost one branch.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dcy {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are suppressed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Fatal variant: aborts the process after flushing.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dcy

#define DCY_LOG_ENABLED(lvl) (static_cast<int>(lvl) >= static_cast<int>(::dcy::GetLogLevel()))

#define DCY_LOG(lvl)                                             \
  !DCY_LOG_ENABLED(::dcy::LogLevel::lvl)                         \
      ? (void)0                                                  \
      : ::dcy::internal::Voidify() &                             \
            ::dcy::internal::LogMessage(::dcy::LogLevel::lvl, __FILE__, __LINE__).stream()

#define DCY_FATAL() ::dcy::internal::FatalLogMessage(__FILE__, __LINE__).stream()

/// Always-on invariant check; prints the expression and aborts on failure.
#define DCY_CHECK(cond)                                          \
  while (!(cond)) ::dcy::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define DCY_CHECK_OK(expr)                                       \
  do {                                                           \
    ::dcy::Status _st = (expr);                                  \
    DCY_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

#ifndef NDEBUG
#define DCY_DCHECK(cond) DCY_CHECK(cond)
#else
#define DCY_DCHECK(cond) \
  while (false) ::dcy::internal::FatalLogMessage(__FILE__, __LINE__).stream()
#endif
