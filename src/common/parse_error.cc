#include "common/parse_error.h"

namespace dcy {

ParseError ParseError::At(const std::string& text, size_t offset, std::string token,
                          std::string message) {
  ParseError e;
  e.token = std::move(token);
  e.message = std::move(message);
  if (offset > text.size()) offset = text.size();

  // Locate the 1-based line/column of `offset` and the bounds of its line.
  size_t line_start = 0;
  int line = 1;
  for (size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
  }
  size_t line_end = text.find('\n', line_start);
  if (line_end == std::string::npos) line_end = text.size();

  e.line = line;
  e.column = static_cast<int>(offset - line_start) + 1;
  e.snippet = text.substr(line_start, line_end - line_start);
  e.snippet += "\n";
  // Tabs keep their width so the caret lands under the token.
  for (size_t i = line_start; i < offset; ++i) {
    e.snippet += text[i] == '\t' ? '\t' : ' ';
  }
  e.snippet += "^";
  return e;
}

std::string ParseError::Render() const {
  std::string out =
      std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  if (!token.empty()) out += " (near \"" + token + "\")";
  if (!snippet.empty()) {
    out += "\n";
    out += snippet;
  }
  return out;
}

Status ParseFail(ParseError* out, ParseError error) {
  Status status = error.ToStatus();
  if (out != nullptr) *out = std::move(error);
  return status;
}

}  // namespace dcy
