#include "common/random.h"

#include "common/logging.h"

namespace dcy {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    DCY_DCHECK(w >= 0.0);
    total += w;
  }
  DCY_CHECK(total > 0.0) << "WeightedIndex needs a positive total weight";
  double point = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric slop lands on the last bucket
}

}  // namespace dcy
