// Size and time unit helpers. SimTime across the repo is int64 nanoseconds.
#pragma once

#include <cstdint>

namespace dcy {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;

// The paper uses decimal MB/GB (network-equipment convention); the
// experiment configs use these to match the paper's 200 MB / 2 GB numbers.
constexpr uint64_t kMB = 1000ULL * 1000ULL;
constexpr uint64_t kGB = 1000ULL * kMB;

/// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000LL;
constexpr SimTime kMillisecond = 1000LL * kMicrosecond;
constexpr SimTime kSecond = 1000LL * kMillisecond;

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr SimTime FromSeconds(double s) { return static_cast<SimTime>(s * 1e9); }
constexpr SimTime FromMillis(double ms) { return static_cast<SimTime>(ms * 1e6); }
constexpr SimTime FromMicros(double us) { return static_cast<SimTime>(us * 1e3); }

/// Gigabits/sec to bytes/sec (decimal, as for link speeds).
constexpr double GbpsToBytesPerSec(double gbps) { return gbps * 1e9 / 8.0; }

}  // namespace dcy
