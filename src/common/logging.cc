#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace dcy {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (DCY_LOG_ENABLED(level_)) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[F " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str() << std::flush;
  std::abort();
}

}  // namespace internal
}  // namespace dcy
