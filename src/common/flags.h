// Tiny --key=value command-line parser for the bench/example binaries.
// Not a general flags library: just enough to override experiment configs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dcy {

/// \brief Parses argv of the form `--key=value` (or bare `--key` == "true").
/// Unknown positional arguments are ignored so binaries keep working under
/// test drivers that add their own arguments.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const { return kv_.count(key) > 0; }

  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace dcy
