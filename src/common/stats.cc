#include "common/stats.h"

#include <cstdio>

namespace dcy {

double Histogram::Percentile(double p) const {
  const uint64_t total = stat_.count();
  if (total == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (static_cast<double>(seen + counts_[i]) >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - static_cast<double>(seen)) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    seen += counts_[i];
  }
  return hi_;
}

double TimeSeries::At(double t) const {
  double v = 0.0;
  for (const auto& [pt, pv] : points_) {
    if (pt > t) break;
    v = pv;
  }
  return v;
}

std::string SeriesTable::ToTsv(double t0, double t1, double step) const {
  std::string out = "time";
  for (const auto& [name, _] : series_) {
    out += "\t";
    out += name;
  }
  out += "\n";
  char buf[64];
  for (double t = t0; t <= t1 + 1e-9; t += step) {
    std::snprintf(buf, sizeof(buf), "%.2f", t);
    out += buf;
    for (const auto& [_, s] : series_) {
      std::snprintf(buf, sizeof(buf), "\t%.3f", s.At(t));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace dcy
