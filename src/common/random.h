// Deterministic, seedable random sources. Every experiment in the repo
// derives all of its randomness from one Rng seeded explicitly, so runs are
// reproducible bit-for-bit (a property NS-2, used by the paper, lacks).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace dcy {

/// \brief SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** PRNG — fast, high-quality, deterministic.
///
/// All distribution helpers (uniform ints, doubles, Gaussian, exponential)
/// live here so call sites never depend on libstdc++ distribution
/// implementations, whose output differs across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
    has_cached_gaussian_ = false;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformU64(uint64_t lo, uint64_t hi) {
    const uint64_t span = hi - lo + 1;
    if (span == 0) return Next();  // full range
    // Lemire-style rejection-free bounded draw (bias < 2^-64, acceptable here).
    __uint128_t m = static_cast<__uint128_t>(Next()) * span;
    return lo + static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformU64(0, static_cast<uint64_t>(hi - lo)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + NextDouble() * (hi - lo); }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard Gaussian via Marsaglia polar method (cached pair).
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate) { return -std::log(1.0 - NextDouble()) / rate; }

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformU64(0, i - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dcy
