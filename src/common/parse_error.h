// Structured parse/compile diagnostics: instead of string-only failures,
// both front ends (the MAL parser and the SQL compiler) report a ParseError
// carrying the source position, the offending token, and a caret-annotated
// snippet, so clients can render errors without string-matching the Status
// message.
#pragma once

#include <string>

#include "common/status.h"

namespace dcy {

/// \brief One diagnostic against a source text. `line`/`column` are 1-based;
/// a default-constructed ParseError (line == 0) means "no error recorded".
struct ParseError {
  int line = 0;            ///< 1-based source line; 0 = unset
  int column = 0;          ///< 1-based column within the line
  std::string token;       ///< offending token text ("" at end of input)
  std::string message;     ///< what was expected / what went wrong
  std::string snippet;     ///< source line + caret marker underneath

  bool set() const { return line > 0; }

  /// Builds an error at byte `offset` of `text`, extracting line/column and
  /// the caret-annotated snippet. `token` may be empty (end of input).
  static ParseError At(const std::string& text, size_t offset, std::string token,
                       std::string message);

  /// Multi-line human rendering:
  ///   <line>:<column>: <message> (near "<token>")
  ///   <source line>
  ///        ^
  std::string Render() const;

  /// InvalidArgument carrying Render() — what parse entry points return so
  /// existing Status-only callers keep working.
  Status ToStatus() const { return Status::InvalidArgument(Render()); }
};

/// Fills `*out` (when non-null) and returns the matching Status. The usual
/// error-exit helper of parser code:
///   return ParseFail(out, ParseError::At(text, pos, tok, "expected ';'"));
Status ParseFail(ParseError* out, ParseError error);

}  // namespace dcy
