#include "write/delta.h"

#include <cstring>

#include "bat/bat.h"
#include "bat/serialize.h"
#include "common/logging.h"

namespace dcy::write {

namespace {

constexpr uint32_t kMagic = 0xDC0DE17Au;
constexpr uint32_t kFormatVersion = 1;

// magic, format, fragment, reserved.
constexpr size_t kHeadBytes = 4 * sizeof(uint32_t);
constexpr size_t kCrcBytes = sizeof(uint32_t);

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

/// Bounds-checked little-endian reader; every failure is Corruption because
/// the caller already verified the frame CRC (a short or misshapen frame
/// that *passes* CRC can only come from a truncated-then-reframed buffer).
struct Reader {
  const char* p;
  size_t left;

  Result<uint32_t> U32() {
    if (left < 4) return Status::Corruption("delta frame truncated (u32)");
    uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    left -= 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (left < 8) return Status::Corruption("delta frame truncated (u64)");
    uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    left -= 8;
    return v;
  }
  Result<std::shared_ptr<const std::vector<uint64_t>>> U64Vector() {
    DCY_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > left / 8) return Status::Corruption("delta frame truncated (id vector)");
    auto out = std::make_shared<std::vector<uint64_t>>(static_cast<size_t>(n));
    if (n > 0) std::memcpy(out->data(), p, static_cast<size_t>(n) * 8);
    p += n * 8;
    left -= static_cast<size_t>(n) * 8;
    return std::shared_ptr<const std::vector<uint64_t>>(std::move(out));
  }
};

bool StrictlyIncreasing(const std::vector<uint64_t>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

}  // namespace

uint64_t DeltaBat::ByteSize() const {
  return (inserts != nullptr ? inserts->ByteSize() : 0) +
         (insert_row_ids != nullptr ? insert_row_ids->size() * 8 : 0) +
         (deletes != nullptr ? deletes->size() * 8 : 0);
}

size_t EncodedDeltaSize(const DeltaBat& d) {
  const bat::BatPtr col = bat::Bat::MakeColumn(d.inserts);
  return kHeadBytes + sizeof(uint64_t) /*version*/ +
         sizeof(uint64_t) + d.deletes->size() * 8 + sizeof(uint64_t) +
         d.insert_row_ids->size() * 8 + sizeof(uint64_t) /*nested size*/ +
         bat::EncodedSize(*col) + kCrcBytes;
}

void SerializeDeltaInto(const DeltaBat& d, std::string* out) {
  DCY_CHECK(d.inserts != nullptr);
  DCY_CHECK(d.insert_row_ids != nullptr && d.deletes != nullptr);
  DCY_CHECK(d.insert_row_ids->size() == d.inserts->size());
  out->clear();
  out->reserve(EncodedDeltaSize(d));
  PutU32(out, kMagic);
  PutU32(out, kFormatVersion);
  PutU32(out, d.fragment);
  PutU32(out, 0);  // reserved
  PutU64(out, d.version);
  PutU64(out, d.deletes->size());
  for (uint64_t id : *d.deletes) PutU64(out, id);
  PutU64(out, d.insert_row_ids->size());
  for (uint64_t id : *d.insert_row_ids) PutU64(out, id);
  // The insert column rides as a nested BAT frame: it reuses the hardened
  // column codec (string heaps included) and its own CRC.
  const std::string nested = bat::Serialize(*bat::Bat::MakeColumn(d.inserts));
  PutU64(out, nested.size());
  out->append(nested);
  PutU32(out, bat::Crc32(out->data(), out->size()));
}

std::string SerializeDelta(const DeltaBat& d) {
  std::string out;
  SerializeDeltaInto(d, &out);
  return out;
}

Result<DeltaPtr> DeserializeDelta(std::string_view buffer) {
  if (buffer.size() < kHeadBytes + kCrcBytes) {
    return Status::Corruption("delta frame shorter than header");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, buffer.data() + buffer.size() - kCrcBytes, kCrcBytes);
  const uint32_t actual = bat::Crc32(buffer.data(), buffer.size() - kCrcBytes);
  if (stored_crc != actual) {
    return Status::Corruption("delta frame CRC mismatch");
  }
  Reader r{buffer.data(), buffer.size() - kCrcBytes};
  DCY_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) return Status::Corruption("delta frame bad magic");
  DCY_ASSIGN_OR_RETURN(uint32_t fmt, r.U32());
  if (fmt != kFormatVersion) {
    return Status::Corruption("delta frame unsupported format version");
  }
  auto d = std::make_shared<DeltaBat>();
  DCY_ASSIGN_OR_RETURN(uint32_t fragment, r.U32());
  d->fragment = fragment;
  DCY_ASSIGN_OR_RETURN(uint32_t reserved, r.U32());
  if (reserved != 0) return Status::Corruption("delta frame bad reserved word");
  DCY_ASSIGN_OR_RETURN(d->version, r.U64());
  DCY_ASSIGN_OR_RETURN(d->deletes, r.U64Vector());
  DCY_ASSIGN_OR_RETURN(d->insert_row_ids, r.U64Vector());
  DCY_ASSIGN_OR_RETURN(uint64_t nested_size, r.U64());
  if (nested_size != r.left) {
    return Status::Corruption("delta frame nested column size mismatch");
  }
  auto nested = bat::Deserialize(std::string_view(r.p, r.left));
  if (!nested.ok()) {
    // The nested codec already types its failures as Corruption; wrap any
    // other code so the contract holds frame-wide.
    if (nested.status().code() == StatusCode::kCorruption) return nested.status();
    return Status::Corruption("delta frame nested column: " +
                              nested.status().message());
  }
  d->inserts = nested.value()->tail();
  if (d->inserts->size() != d->insert_row_ids->size()) {
    return Status::Corruption("delta frame insert ids misaligned with column");
  }
  if (!StrictlyIncreasing(*d->deletes) || !StrictlyIncreasing(*d->insert_row_ids)) {
    return Status::Corruption("delta frame row ids not strictly increasing");
  }
  return DeltaPtr(std::move(d));
}

}  // namespace dcy::write
