#include "write/write_log.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.h"

namespace dcy::write {

namespace {

/// Appends the rows of `src` whose ids are not in `dead`, batching runs of
/// survivors into bulk AppendColumnRange calls.
void AppendSurvivors(bat::ColumnBuilder* b, const bat::Column& src,
                     const std::vector<uint64_t>& ids,
                     const std::unordered_set<uint64_t>& dead) {
  size_t run_begin = 0;
  for (size_t i = 0; i <= ids.size(); ++i) {
    const bool keep = i < ids.size() && (dead.empty() || dead.count(ids[i]) == 0);
    if (keep) continue;
    if (i > run_begin) b->AppendColumnRange(src, run_begin, i - run_begin);
    run_begin = i + 1;
  }
}

}  // namespace

Status WriteLog::RegisterFragment(core::BatId id, const std::string& table,
                                  const std::string& column, bat::BatPtr base) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState& t = tables_[table];
  if (t.name.empty()) {
    t.name = table;
    t.base_rows = base->size();
    t.base_row_ids.resize(t.base_rows);
    for (size_t i = 0; i < t.base_rows; ++i) t.base_row_ids[i] = i;
    t.next_row_id = t.base_rows;
  } else if (base->size() != t.base_rows) {
    return Status::InvalidArgument("fragment \"" + table + "." + column + "\" has " +
                                   std::to_string(base->size()) + " rows, table has " +
                                   std::to_string(t.base_rows));
  }
  FragmentState f;
  f.id = id;
  f.name = table + "." + column;
  f.base = std::move(base);
  fragment_index_[id] = {table, t.columns.size()};
  t.columns.push_back(std::move(f));
  return Status::OK();
}

WriteLog::TableState* WriteLog::FindTableLocked(const std::string& table) {
  auto it = tables_.find(table);
  return it == tables_.end() || it->second.name.empty() ? nullptr : &it->second;
}

uint64_t WriteLog::MinActiveSnapshotLocked() const {
  return active_snapshots_.empty() ? std::numeric_limits<uint64_t>::max()
                                   : active_snapshots_.begin()->first;
}

Result<CommitResult> WriteLog::CommitInsert(
    const std::string& table,
    const std::vector<std::pair<std::string, std::vector<bat::Value>>>& columns) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState* t = FindTableLocked(table);
  if (t == nullptr) return Status::NotFound("unknown table \"" + table + "\"");
  if (columns.size() != t->columns.size()) {
    return Status::InvalidArgument(
        "INSERT must provide every column of \"" + table + "\" (" +
        std::to_string(t->columns.size()) + " columns, got " +
        std::to_string(columns.size()) + ")");
  }
  const size_t rows = columns.empty() ? 0 : columns.front().second.size();
  if (rows == 0) return CommitResult{version_, 0, {}};

  // Reorder the provided columns into table registration order, coercing
  // each value to the column's physical type.
  Commit c;
  c.inserts.resize(t->columns.size());
  for (size_t ci = 0; ci < t->columns.size(); ++ci) {
    const FragmentState& f = t->columns[ci];
    const std::string col_name = f.name.substr(f.name.rfind('.') + 1);
    const std::vector<bat::Value>* values = nullptr;
    for (const auto& [name, vals] : columns) {
      if (name != col_name) continue;
      if (values != nullptr) {
        return Status::InvalidArgument("column \"" + col_name + "\" provided twice");
      }
      values = &vals;
    }
    if (values == nullptr) {
      return Status::InvalidArgument("INSERT is missing column \"" + col_name + "\"");
    }
    if (values->size() != rows) {
      return Status::InvalidArgument("INSERT rows are ragged at column \"" + col_name +
                                     "\"");
    }
    const bat::ValType target = f.base->tail_type();
    bat::ColumnBuilder b(target);
    b.Reserve(rows);
    for (const bat::Value& v : *values) {
      const bool v_str = v.type == bat::ValType::kStr;
      const bool t_str = target == bat::ValType::kStr;
      if (v_str != t_str) {
        return Status::InvalidArgument("cannot insert " +
                                       std::string(bat::ValTypeName(v.type)) +
                                       " into column \"" + col_name + "\" (" +
                                       bat::ValTypeName(target) + ")");
      }
      if (target == bat::ValType::kDbl) {
        b.AppendDouble(v.AsDouble());
      } else if (t_str) {
        b.AppendString(v.s);
      } else {
        if (v.type == bat::ValType::kDbl) {
          return Status::InvalidArgument("cannot insert double into column \"" +
                                         col_name + "\" (" + bat::ValTypeName(target) +
                                         ")");
        }
        b.AppendInt64(v.i);
      }
    }
    c.inserts[ci] = b.Finish();
    c.max_column_bytes = std::max(c.max_column_bytes, c.inserts[ci]->ByteSize());
  }

  auto ids = std::make_shared<std::vector<uint64_t>>();
  ids->reserve(rows);
  for (size_t i = 0; i < rows; ++i) ids->push_back(t->next_row_id + i);
  t->next_row_id += rows;
  c.version = ++version_;
  c.insert_row_ids = ids;
  c.deletes = std::make_shared<std::vector<uint64_t>>();

  CommitResult out;
  out.version = c.version;
  out.rows = static_cast<int64_t>(rows);
  out.published.reserve(t->columns.size());
  for (size_t ci = 0; ci < t->columns.size(); ++ci) {
    auto d = std::make_shared<DeltaBat>();
    d->fragment = t->columns[ci].id;
    d->version = c.version;
    d->inserts = c.inserts[ci];
    d->insert_row_ids = c.insert_row_ids;
    d->deletes = c.deletes;
    out.published.push_back(std::move(d));
  }
  t->pending.push_back(std::move(c));

  metrics_.commits++;
  metrics_.rows_inserted += rows;
  metrics_.deltas_published += t->columns.size();
  commit_count_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

std::vector<uint64_t> WriteLog::ViewRowIdsLocked(const TableState& t,
                                                 uint64_t snapshot) const {
  std::unordered_set<uint64_t> dead;
  for (const Commit& c : t.pending) {
    if (c.version > snapshot) break;
    for (uint64_t id : *c.deletes) dead.insert(id);
  }
  std::vector<uint64_t> out;
  out.reserve(t.base_row_ids.size());
  for (uint64_t id : t.base_row_ids) {
    if (dead.empty() || dead.count(id) == 0) out.push_back(id);
  }
  for (const Commit& c : t.pending) {
    if (c.version > snapshot) break;
    for (uint64_t id : *c.insert_row_ids) {
      if (dead.empty() || dead.count(id) == 0) out.push_back(id);
    }
  }
  return out;
}

Result<CommitResult> WriteLog::CommitDeleteAt(const std::string& table,
                                              const std::vector<uint64_t>& positions,
                                              uint64_t snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState* t = FindTableLocked(table);
  if (t == nullptr) return Status::NotFound("unknown table \"" + table + "\"");
  if (positions.empty()) return CommitResult{version_, 0, {}};

  const std::vector<uint64_t> view = ViewRowIdsLocked(*t, snapshot);
  auto dead = std::make_shared<std::vector<uint64_t>>();
  dead->reserve(positions.size());
  for (uint64_t p : positions) {
    if (p >= view.size()) {
      return Status::InvalidArgument("DELETE position " + std::to_string(p) +
                                     " beyond the snapshot view (" +
                                     std::to_string(view.size()) + " rows)");
    }
    const uint64_t id = view[p];
    // A later concurrent commit may have deleted the row already; deleting
    // it twice is a no-op, not an error.
    if (t->deleted.count(id) == 0) dead->push_back(id);
  }
  std::sort(dead->begin(), dead->end());
  dead->erase(std::unique(dead->begin(), dead->end()), dead->end());
  if (dead->empty()) return CommitResult{version_, 0, {}};

  Commit c;
  c.version = ++version_;
  c.inserts.reserve(t->columns.size());
  for (const FragmentState& f : t->columns) {
    c.inserts.push_back(bat::ColumnBuilder(f.base->tail_type()).Finish());
  }
  c.insert_row_ids = std::make_shared<std::vector<uint64_t>>();
  c.deletes = dead;
  c.max_column_bytes = dead->size() * sizeof(uint64_t);
  for (uint64_t id : *dead) t->deleted.insert(id);

  CommitResult out;
  out.version = c.version;
  out.rows = static_cast<int64_t>(dead->size());
  out.published.reserve(t->columns.size());
  for (size_t ci = 0; ci < t->columns.size(); ++ci) {
    auto d = std::make_shared<DeltaBat>();
    d->fragment = t->columns[ci].id;
    d->version = c.version;
    d->inserts = c.inserts[ci];
    d->insert_row_ids = c.insert_row_ids;
    d->deletes = c.deletes;
    out.published.push_back(std::move(d));
  }
  t->pending.push_back(std::move(c));

  metrics_.commits++;
  metrics_.rows_deleted += out.rows;
  metrics_.deltas_published += t->columns.size();
  commit_count_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

uint64_t WriteLog::AcquireSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  active_snapshots_[version_]++;
  return version_;
}

Result<uint64_t> WriteLog::AcquireSnapshotAt(uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (v > version_) {
    return Status::InvalidArgument("snapshot " + std::to_string(v) +
                                   " is ahead of the current version " +
                                   std::to_string(version_));
  }
  active_snapshots_[v]++;
  return v;
}

void WriteLog::ReleaseSnapshot(uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_snapshots_.find(v);
  if (it == active_snapshots_.end()) return;
  if (--it->second == 0) active_snapshots_.erase(it);
}

uint64_t WriteLog::CurrentVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

uint64_t WriteLog::BaseVersionOf(core::BatId fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fragment_index_.find(fragment);
  if (it == fragment_index_.end()) return 0;
  auto tit = tables_.find(it->second.first);
  return tit == tables_.end() ? 0 : tit->second.base_version;
}

Result<bat::BatPtr> WriteLog::ResolveView(core::BatId fragment,
                                          const bat::BatPtr& pinned,
                                          uint64_t snapshot) {
  if (!HasWrites()) return pinned;  // read-only cluster fast path
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fragment_index_.find(fragment);
  if (it == fragment_index_.end()) return pinned;
  TableState& t = tables_[it->second.first];
  FragmentState& f = t.columns[it->second.second];
  if (t.pending.empty() && t.base_version == 0) return pinned;  // table untouched
  if (snapshot < t.base_version) {
    metrics_.snapshots_rejected++;
    return Status::FailedPrecondition(
        "snapshot " + std::to_string(snapshot) + " predates the compacted base of \"" +
        t.name + "\" (version " + std::to_string(t.base_version) + ")");
  }

  // Effective version: the last commit visible at this snapshot. Readers at
  // different snapshots between the same two commits share one view.
  uint64_t eff = t.base_version;
  size_t applicable = 0;
  for (const Commit& c : t.pending) {
    if (c.version > snapshot) break;
    eff = c.version;
    ++applicable;
  }
  // The log's base is authoritative: a ring-delivered payload may be a
  // stale pre-fold copy, so written tables always resolve through it.
  if (applicable == 0) return f.base;
  if (f.cache_version == eff && f.cache_view != nullptr) {
    metrics_.merge_cache_hits++;
    return f.cache_view;
  }

  const auto start = std::chrono::steady_clock::now();
  std::unordered_set<uint64_t> dead;
  for (size_t i = 0; i < applicable; ++i) {
    for (uint64_t id : *t.pending[i].deletes) dead.insert(id);
  }
  // Merges always build a fresh column: IsSorted() memoization starts cold
  // on every version bump and the base columns stay immutable.
  bat::ColumnBuilder b(f.base->tail_type());
  b.Reserve(t.base_rows + 64);
  AppendSurvivors(&b, *f.base->tail(), t.base_row_ids, dead);
  for (size_t i = 0; i < applicable; ++i) {
    const Commit& c = t.pending[i];
    AppendSurvivors(&b, *c.inserts[it->second.second], *c.insert_row_ids, dead);
  }
  bat::BatPtr view = bat::Bat::MakeColumn(b.Finish());
  f.cache_version = eff;
  f.cache_view = view;
  metrics_.merges++;
  metrics_.deltas_merged += applicable;
  metrics_.merge_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return view;
}

std::vector<std::pair<std::string, core::BatId>> WriteLog::TablesReadyToFold(
    const CompactionOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, core::BatId>> out;
  for (auto& [name, t] : tables_) {
    if (t.folding || t.pending.empty() || t.columns.empty()) continue;
    uint64_t fragment_bytes = 0;
    for (const Commit& c : t.pending) fragment_bytes += c.max_column_bytes;
    // Idle drain: once writers go quiet, the pending tail never reaches the
    // thresholds, so a table whose newest pending version is unchanged since
    // the previous scan folds anyway.
    const uint64_t newest = t.pending.back().version;
    const bool idle = opts.drain_idle && newest == t.idle_mark;
    t.idle_mark = newest;
    if (idle || t.pending.size() >= opts.max_delta_count ||
        fragment_bytes >= opts.max_delta_bytes) {
      out.emplace_back(name, t.columns.front().id);
    }
  }
  return out;
}

void WriteLog::SetFoldHookForTest(std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fold_hook_ = std::move(hook);
}

Result<FoldResult> WriteLog::FoldTable(const std::string& table,
                                       const std::function<bool()>& commit_guard) {
  // Phase 1 (locked): pick the fold point and snapshot the inputs.
  std::vector<Commit> commits;
  std::vector<bat::ColumnPtr> bases;
  std::vector<uint64_t> base_ids;
  std::function<void(const std::string&)> hook;
  uint64_t fold_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TableState* t = FindTableLocked(table);
    if (t == nullptr) return Status::NotFound("unknown table \"" + table + "\"");
    if (t->folding) return FoldResult{table, t->base_version, 0, {}};
    // Never fold past an active snapshot: its reader still needs the
    // pre-fold deltas (version-at-prepare, no torn reads).
    const uint64_t bound = std::min(version_, MinActiveSnapshotLocked());
    for (const Commit& c : t->pending) {
      if (c.version > bound) break;
      commits.push_back(c);
      fold_version = c.version;
    }
    if (commits.empty()) return FoldResult{table, t->base_version, 0, {}};
    t->folding = true;
    for (const FragmentState& f : t->columns) bases.push_back(f.base->tail());
    base_ids = t->base_row_ids;
    hook = fold_hook_;
  }

  // Phase 2 (unlocked): merge the fold window into fresh base columns.
  // Commits and columns are immutable, so no lock is needed; concurrent
  // commits append versions > fold_version and are untouched.
  std::unordered_set<uint64_t> dead;
  for (const Commit& c : commits) {
    for (uint64_t id : *c.deletes) dead.insert(id);
  }
  std::vector<uint64_t> new_ids;
  new_ids.reserve(base_ids.size());
  for (uint64_t id : base_ids) {
    if (dead.empty() || dead.count(id) == 0) new_ids.push_back(id);
  }
  for (const Commit& c : commits) {
    for (uint64_t id : *c.insert_row_ids) {
      if (dead.empty() || dead.count(id) == 0) new_ids.push_back(id);
    }
  }
  std::vector<bat::BatPtr> rebased;
  rebased.reserve(bases.size());
  for (size_t ci = 0; ci < bases.size(); ++ci) {
    bat::ColumnBuilder b(bases[ci]->type());
    b.Reserve(new_ids.size());
    AppendSurvivors(&b, *bases[ci], base_ids, dead);
    for (const Commit& c : commits) {
      AppendSurvivors(&b, *c.inserts[ci], *c.insert_row_ids, dead);
    }
    rebased.push_back(bat::Bat::MakeColumn(b.Finish()));
  }
  if (hook) hook(table);

  // Phase 3 (locked): commit the fold atomically — or abandon it untouched
  // when the guard says the compacting node died meanwhile.
  std::lock_guard<std::mutex> lock(mu_);
  TableState* t = FindTableLocked(table);
  DCY_CHECK(t != nullptr);
  t->folding = false;
  if (commit_guard && !commit_guard()) {
    metrics_.compactions_abandoned++;
    return Status::Aborted("fold of \"" + table + "\" abandoned: compacting node down");
  }
  DCY_CHECK(t->pending.size() >= commits.size());
  DCY_CHECK(t->pending[commits.size() - 1].version == fold_version);
  t->pending.erase(t->pending.begin(), t->pending.begin() + commits.size());
  t->base_version = fold_version;
  t->base_rows = new_ids.size();
  t->base_row_ids = std::move(new_ids);
  t->deleted.clear();
  for (const Commit& c : t->pending) {
    for (uint64_t id : *c.deletes) t->deleted.insert(id);
  }
  FoldResult out;
  out.table = table;
  out.new_version = fold_version;
  out.deltas_folded = commits.size() * t->columns.size();
  for (size_t ci = 0; ci < t->columns.size(); ++ci) {
    FragmentState& f = t->columns[ci];
    f.base = rebased[ci];
    f.cache_version = 0;
    f.cache_view = nullptr;
    out.rebased.emplace_back(f.id, f.name, rebased[ci]);
  }
  metrics_.compactions++;
  metrics_.deltas_folded += out.deltas_folded;
  return out;
}

WriteMetrics WriteLog::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  WriteMetrics m = metrics_;
  m.current_version = version_;
  for (const auto& [name, t] : tables_) {
    m.pending_deltas += t.pending.size() * t.columns.size();
    for (const Commit& c : t.pending) {
      m.pending_delta_bytes += c.max_column_bytes * t.columns.size();
    }
  }
  m.delta_frames_forwarded = delta_frames_forwarded_.load(std::memory_order_relaxed);
  m.delta_bytes_on_ring = delta_bytes_on_ring_.load(std::memory_order_relaxed);
  m.delta_decode_failures = delta_decode_failures_.load(std::memory_order_relaxed);
  return m;
}

std::vector<TableVersionInfo> WriteLog::TableVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TableVersionInfo> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) {
    TableVersionInfo info;
    info.table = name;
    info.base_version = t.base_version;
    info.current_version = t.pending.empty() ? t.base_version : t.pending.back().version;
    info.pending_deltas = t.pending.size() * t.columns.size();
    for (const Commit& c : t.pending) {
      info.pending_delta_bytes += c.max_column_bytes * t.columns.size();
    }
    out.push_back(std::move(info));
  }
  return out;
}

void WriteLog::NoteDeltaForwarded(uint64_t wire_bytes) {
  delta_frames_forwarded_.fetch_add(1, std::memory_order_relaxed);
  delta_bytes_on_ring_.fetch_add(wire_bytes, std::memory_order_relaxed);
}

void WriteLog::NoteDeltaDecodeFailure() {
  delta_decode_failures_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dcy::write
