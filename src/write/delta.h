// Immutable delta BATs: the unit of update propagation on the ring.
//
// A writer never mutates a base fragment. Each commit produces one DeltaBat
// per affected fragment (column), keyed by the fragment id and a monotone
// commit version: an insert set (fresh column of appended values plus their
// stable row ids) and a delete set (stable row ids removed). Updates are
// modelled as delete + insert. Deltas circulate on the ring alongside their
// base fragments (paper's update-propagation sketch) and are folded into new
// base fragments by the background compactor (write/write_log.h).
//
// The wire frame is self-describing little-endian with a leading whole-frame
// CRC32 contract like bat/serialize.h: any byte flip or truncation of an
// encoded delta decodes to a typed Status::Corruption, never to garbage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bat/column.h"
#include "common/status.h"
#include "core/types.h"

namespace dcy::write {

/// \brief One fragment's share of one committed write. Immutable after
/// construction; the row-id vectors are shared across the sibling deltas of
/// the same commit (one per column of the table).
struct DeltaBat {
  core::BatId fragment = core::kInvalidBat;
  /// Monotone commit version assigned by the WriteLog. A reader at snapshot
  /// S applies exactly the deltas with version <= S.
  uint64_t version = 0;
  /// Appended values for this fragment's column; size 0 for delete-only
  /// commits. Never null.
  bat::ColumnPtr inserts;
  /// Stable row ids of the inserted rows, aligned with `inserts` and
  /// strictly increasing.
  std::shared_ptr<const std::vector<uint64_t>> insert_row_ids;
  /// Stable row ids deleted by this commit, strictly increasing.
  std::shared_ptr<const std::vector<uint64_t>> deletes;

  /// Payload bytes (drives the compaction thresholds and ring accounting).
  uint64_t ByteSize() const;
};

using DeltaPtr = std::shared_ptr<const DeltaBat>;

/// Exact encoded frame size of `d`.
size_t EncodedDeltaSize(const DeltaBat& d);

/// Encodes into `*out`, replacing its contents (sized exactly like
/// bat::SerializeInto so pooled frames pay no reallocation).
void SerializeDeltaInto(const DeltaBat& d, std::string* out);
std::string SerializeDelta(const DeltaBat& d);

/// Decodes; verifies magic, format version, the whole-frame CRC and every
/// structural invariant. Any mismatch is Status::Corruption.
Result<DeltaPtr> DeserializeDelta(std::string_view buffer);

}  // namespace dcy::write
