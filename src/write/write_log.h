// The versioned write subsystem of the ring: a cluster-level commit log of
// immutable delta BATs plus the fold (compaction) machinery.
//
// Model. Every writable table is a set of base fragments (one per column)
// that fold up to a `base_version`, plus a list of pending commits, each an
// immutable per-column delta (write/delta.h) under a monotone commit
// version. Readers run at a snapshot version acquired at query start
// (version-at-prepare): the view of a fragment at snapshot S is
//
//     base rows surviving every delete with version <= S
//  ++ insert rows with version <= S surviving every delete with version <= S
//
// Rows carry stable row ids, so deletes commute with folds and the
// enumeration order (base order, then insert order) is identical across the
// columns of a table — the planner's positional-alignment invariant holds
// for merged views. Merges always build fresh bat::Column objects: the
// IsSorted() memoization and the zero-copy serialization path never observe
// a mutation.
//
// The WriteLog mirrors the cluster fragment registry's role as "the ring's
// durable copy": circulating delta frames (runtime/ring_cluster.cc) are the
// propagation mechanism, the log is the correctness anchor. Folding is
// atomic per table and bounded by the minimum active snapshot, so a running
// query never sees a torn mix of old and new bases.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"
#include "common/units.h"
#include "core/types.h"
#include "write/delta.h"

namespace dcy::write {

/// \brief Compactor tunables (RingCluster::Options::compaction; the PR 8
/// ResilienceOptions pattern).
struct CompactionOptions {
  bool enable = true;
  /// A table folds once any of its fragments accumulates this many pending
  /// delta bytes...
  uint64_t max_delta_bytes = 256 * 1024;
  /// ...or this many pending deltas (commits touching it).
  uint64_t max_delta_count = 64;
  /// Cadence of each node's background compactor thread.
  SimTime interval = FromMillis(25);
  /// Fold a table whose newest pending delta is unchanged between two
  /// compactor scans, even below the thresholds above. Without this a tail
  /// of fewer than `max_delta_count` deltas would sit unfolded forever once
  /// writers go quiet.
  bool drain_idle = true;
};

/// \brief Counters of the write subsystem (RingCluster::Writes()).
struct WriteMetrics {
  uint64_t commits = 0;
  uint64_t rows_inserted = 0;
  uint64_t rows_deleted = 0;
  uint64_t deltas_published = 0;  ///< delta BATs created (per fragment per commit)
  uint64_t deltas_merged = 0;     ///< delta applications into pin-time views
  uint64_t deltas_folded = 0;     ///< deltas retired into new bases
  uint64_t merges = 0;            ///< merged views built
  uint64_t merge_cache_hits = 0;  ///< views served from the per-fragment cache
  double merge_seconds = 0.0;     ///< time spent building merged views
  uint64_t compactions = 0;
  uint64_t compactions_abandoned = 0;  ///< folds dropped (owner died mid-fold)
  uint64_t snapshots_rejected = 0;     ///< reads under a folded-away snapshot
  // Ring circulation of delta frames (maintained by the runtime).
  uint64_t delta_frames_forwarded = 0;
  uint64_t delta_bytes_on_ring = 0;
  uint64_t delta_decode_failures = 0;
  // Gauges.
  uint64_t current_version = 0;
  uint64_t pending_deltas = 0;
  uint64_t pending_delta_bytes = 0;
};

/// \brief Outcome of one committed write statement.
struct CommitResult {
  uint64_t version = 0;  ///< commit version (readers at >= version see it)
  int64_t rows = 0;      ///< rows inserted/deleted
  /// The per-fragment deltas published by this commit (empty when rows == 0);
  /// the runtime sends these around the ring.
  std::vector<DeltaPtr> published;
};

/// \brief One folded table: the new base fragments to republish.
struct FoldResult {
  std::string table;
  uint64_t new_version = 0;  ///< base_version after the fold
  uint64_t deltas_folded = 0;
  /// (fragment id, qualified name, new base payload), column order.
  std::vector<std::tuple<core::BatId, std::string, bat::BatPtr>> rebased;
};

/// \brief Per-table observability row (dcsql \tables, tests).
struct TableVersionInfo {
  std::string table;  ///< qualified ("sys.lineitem")
  uint64_t base_version = 0;
  uint64_t current_version = 0;  ///< latest commit touching this table
  uint64_t pending_deltas = 0;   ///< pending commits * columns
  uint64_t pending_delta_bytes = 0;
};

/// \brief The cluster-level write log. Thread-safe; every mutation happens
/// under one internal mutex (writes are orders of magnitude rarer than
/// reads, and the read path short-circuits via an atomic when the cluster
/// has never committed a write).
class WriteLog {
 public:
  /// Registers a base fragment at version 0. Fragments of one table must be
  /// registered with equal row counts (column-store invariant).
  Status RegisterFragment(core::BatId id, const std::string& table,
                          const std::string& column, bat::BatPtr base);

  // ---- commits --------------------------------------------------------------

  /// Commits one INSERT of `rows` full rows. `columns` names every column of
  /// `table` exactly once (any order); row values are coerced to the column
  /// types (int widens to double; strings never coerce).
  Result<CommitResult> CommitInsert(
      const std::string& table,
      const std::vector<std::pair<std::string, std::vector<bat::Value>>>& columns);

  /// Commits one DELETE of the rows at `positions` (0-based offsets into the
  /// table's merged view at `snapshot`). Rows already deleted by a
  /// concurrent later commit are skipped, not failed.
  Result<CommitResult> CommitDeleteAt(const std::string& table,
                                      const std::vector<uint64_t>& positions,
                                      uint64_t snapshot);

  // ---- snapshots ------------------------------------------------------------

  /// Current version + refcount: folds never pass an active snapshot.
  uint64_t AcquireSnapshot();
  /// Refcounts a caller-chosen (paper: version-at-prepare) snapshot; fails
  /// when `v` is ahead of the current version.
  Result<uint64_t> AcquireSnapshotAt(uint64_t v);
  void ReleaseSnapshot(uint64_t v);
  uint64_t CurrentVersion() const;

  // ---- the read path --------------------------------------------------------

  /// Resolves the view of `fragment` at `snapshot`. Returns `pinned`
  /// untouched when the fragment's table has no writes at or before the
  /// snapshot (the read-only fast path costs one relaxed atomic load).
  /// Otherwise builds (or serves from the per-fragment cache) a merged view
  /// with fresh columns. FailedPrecondition when `snapshot` predates the
  /// folded base (the caller held no snapshot pin across the fold).
  Result<bat::BatPtr> ResolveView(core::BatId fragment, const bat::BatPtr& pinned,
                                  uint64_t snapshot);

  /// The base version of `fragment` (0 when unknown/unwritten); used by the
  /// runtime to tag re-admitted fragments and purge stale ring deltas.
  uint64_t BaseVersionOf(core::BatId fragment) const;

  // ---- folding (background compactor) ---------------------------------------

  /// Tables whose pending deltas crossed the thresholds — or sat idle for a
  /// full scan (see CompactionOptions::drain_idle) — by first-fragment id
  /// (the runtime maps that to the owning node).
  std::vector<std::pair<std::string, core::BatId>> TablesReadyToFold(
      const CompactionOptions& opts);

  /// Folds every commit with version <= min(active snapshots, current) into
  /// new base fragments for `table`. `commit_guard` (may be null) runs under
  /// the log lock immediately before the fold becomes visible; returning
  /// false abandons it (Aborted) with the log untouched — the runtime uses
  /// this to drop folds whose owner node died mid-compaction. Returns OK
  /// with an empty FoldResult::rebased when there was nothing to fold.
  Result<FoldResult> FoldTable(const std::string& table,
                               const std::function<bool()>& commit_guard);

  /// Test-only: invoked after a fold's merge work, before its commit (the
  /// chaos suite uses it to crash the compacting node mid-fold).
  void SetFoldHookForTest(std::function<void(const std::string&)> hook);

  // ---- observability --------------------------------------------------------

  WriteMetrics Metrics() const;
  std::vector<TableVersionInfo> TableVersions() const;
  /// True once any write committed (the read fast path's condition).
  bool HasWrites() const { return commit_count_.load(std::memory_order_relaxed) > 0; }

  /// Ring-circulation accounting, called by the runtime's delta frames.
  void NoteDeltaForwarded(uint64_t wire_bytes);
  void NoteDeltaDecodeFailure();

 private:
  struct FragmentState {
    core::BatId id = core::kInvalidBat;
    std::string name;  ///< qualified "schema.table.column"
    bat::BatPtr base;
    /// Merged-view cache: the view at effective version `cache_version`
    /// (the last commit <= the reader's snapshot), invalidated by folds.
    uint64_t cache_version = 0;
    bat::BatPtr cache_view;
  };

  struct Commit {
    uint64_t version = 0;
    /// Per column of the table (registration order); never null, size 0 for
    /// delete-only commits.
    std::vector<bat::ColumnPtr> inserts;
    std::shared_ptr<const std::vector<uint64_t>> insert_row_ids;
    std::shared_ptr<const std::vector<uint64_t>> deletes;
    uint64_t max_column_bytes = 0;  ///< widest column's delta payload
  };

  struct TableState {
    std::string name;
    std::vector<FragmentState> columns;
    uint64_t base_version = 0;
    uint64_t base_rows = 0;
    std::vector<uint64_t> base_row_ids;  ///< strictly increasing
    uint64_t next_row_id = 0;
    std::vector<Commit> pending;  ///< version-ascending
    /// Row ids deleted by any pending commit (duplicate-delete filter).
    std::unordered_set<uint64_t> deleted;
    bool folding = false;
    /// Newest pending version at the last compactor scan (idle-drain mark).
    uint64_t idle_mark = 0;
  };

  /// Enumerates the row ids of `t`'s view at `snapshot` (base then inserts,
  /// deletes <= snapshot applied). Callers hold mu_.
  std::vector<uint64_t> ViewRowIdsLocked(const TableState& t, uint64_t snapshot) const;
  uint64_t MinActiveSnapshotLocked() const;
  TableState* FindTableLocked(const std::string& table);

  mutable std::mutex mu_;
  std::map<std::string, TableState> tables_;
  std::unordered_map<core::BatId, std::pair<std::string, size_t>> fragment_index_;
  uint64_t version_ = 0;
  std::map<uint64_t, uint32_t> active_snapshots_;
  std::function<void(const std::string&)> fold_hook_;

  std::atomic<uint64_t> commit_count_{0};

  // Metrics (guarded by mu_ except the ring-circulation atomics).
  WriteMetrics metrics_;
  std::atomic<uint64_t> delta_frames_forwarded_{0};
  std::atomic<uint64_t> delta_bytes_on_ring_{0};
  std::atomic<uint64_t> delta_decode_failures_{0};
};

}  // namespace dcy::write
