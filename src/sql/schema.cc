#include "sql/schema.h"

namespace dcy::sql {

void Schema::AddColumn(const std::string& table, const std::string& column,
                       bat::ValType type) {
  auto& cols = tables_[table];
  for (auto& c : cols) {
    if (c.name == column) {
      c.type = type;
      return;
    }
  }
  cols.push_back(Column{column, type});
}

const Schema::Column* Schema::FindColumn(const std::string& table,
                                         const std::string& column) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return nullptr;
  for (const auto& c : it->second) {
    if (c.name == column) return &c;
  }
  return nullptr;
}

const std::vector<Schema::Column>& Schema::TableColumns(const std::string& table) const {
  static const std::vector<Column> kEmpty;
  auto it = tables_.find(table);
  return it == tables_.end() ? kEmpty : it->second;
}

std::vector<std::string> Schema::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Schema Schema::FromQualifiedColumns(const std::map<std::string, bat::ValType>& columns) {
  Schema s;
  for (const auto& [qualified, type] : columns) {
    const size_t first = qualified.find('.');
    const size_t second = first == std::string::npos ? first : qualified.find('.', first + 1);
    if (second == std::string::npos) continue;  // not schema.table.column
    s.AddColumn(qualified.substr(first + 1, second - first - 1), qualified.substr(second + 1),
                type);
  }
  return s;
}

}  // namespace dcy::sql
