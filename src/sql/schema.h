// Relational schema the analyzer resolves names against: table -> ordered
// (column, type). The runtime builds one from the BATs loaded into a ring
// (RingCluster records each "schema.table.column" tail type at LoadBat);
// tests build them by hand.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bat/column.h"

namespace dcy::sql {

class Schema {
 public:
  struct Column {
    std::string name;
    bat::ValType type = bat::ValType::kLng;
  };

  /// Registers `table.column` (idempotent; re-adding updates the type).
  void AddColumn(const std::string& table, const std::string& column, bat::ValType type);

  bool HasTable(const std::string& table) const { return tables_.count(table) > 0; }

  /// nullptr if the table or column does not exist.
  const Column* FindColumn(const std::string& table, const std::string& column) const;

  /// Columns of `table` in registration order (empty if unknown).
  const std::vector<Column>& TableColumns(const std::string& table) const;

  std::vector<std::string> TableNames() const;

  /// Builds a schema from fully qualified "schema.table.column" -> type
  /// entries, dropping the leading schema qualifier (single-schema engine;
  /// the front end resolves unqualified table names).
  static Schema FromQualifiedColumns(const std::map<std::string, bat::ValType>& columns);

 private:
  std::map<std::string, std::vector<Column>> tables_;
};

}  // namespace dcy::sql
