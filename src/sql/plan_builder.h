// Lowers an analyzed SELECT to a MAL program over the engine's BAT algebra.
//
// Compilation keeps one invariant: after every stage, each live column is a
// BAT [dense 0..n-1, value] and all live columns are positionally aligned.
// Predicates evaluate to mirror BATs of qualifying positions; a gather
// (reverse(markT(M)) + leftjoin per column) re-establishes the invariant
// after every selection, join, and sort. Grouping chains group.id /
// group.refine, projects group columns through group.extents, and computes
// aggregates with the perGroup kernels. The emitted program is SSA (every
// variable bound exactly once), which the DcOptimizer's bind-hoisting
// rewrite requires.
#pragma once

#include "common/parse_error.h"
#include "common/status.h"
#include "mal/program.h"
#include "sql/analyzer.h"
#include "sql/schema.h"

namespace dcy::sql {

/// Emits the MAL program for `q`. `text` is the SQL source (diagnostics);
/// `error` optionally receives structured errors for the few constructs the
/// planner rejects (e.g. cross joins, string column-vs-column comparisons).
Result<mal::Program> BuildPlan(const AnalyzedQuery& q, const Schema& schema,
                               const std::string& text, ParseError* error = nullptr);

/// Lowers an INSERT to one sql.wappend per column plus a final sql.wcommit
/// whose arguments chain the append tokens (the dataflow edges that order
/// the commit after every buffered column). The wcommit result — the number
/// of rows inserted — is the plan's scalar result (ISSUE-9 write path).
Result<mal::Program> BuildInsertPlan(const AnalyzedInsert& ins);

/// Lowers a DELETE: binds the predicate's columns, evaluates the WHERE to a
/// mirror BAT of qualifying positions in the query-snapshot view (or mirrors
/// a whole column when there is no WHERE), and emits sql.wdelete. The result
/// is the number of rows deleted.
Result<mal::Program> BuildDeletePlan(AnalyzedDelete del, const Schema& schema,
                                     const std::string& text, ParseError* error = nullptr);

}  // namespace dcy::sql
