// SQL tokenizer. Produces the full token stream up front so the parser can
// peek freely; every token keeps its byte offset for caret diagnostics.
#pragma once

#include <string>
#include <vector>

#include "common/parse_error.h"
#include "common/status.h"

namespace dcy::sql {

struct Token {
  enum class Kind {
    kIdent,   ///< bare word (keywords are idents matched case-insensitively)
    kInt,     ///< integer literal
    kFloat,   ///< floating-point literal
    kString,  ///< 'single-quoted' string ('' escapes a quote)
    kSymbol,  ///< punctuation / operator, in `text`
    kEnd,     ///< end of input
  };
  Kind kind = Kind::kEnd;
  std::string text;  ///< raw spelling (idents keep their original case)
  int64_t i = 0;     ///< kInt
  double d = 0.0;    ///< kFloat
  size_t offset = 0;

  /// Case-insensitive keyword match for kIdent tokens.
  bool IsWord(const char* w) const;
  bool IsSymbol(const char* s) const { return kind == Kind::kSymbol && text == s; }
};

/// Tokenizes `text`. `--` comments run to end of line. Multi-char operators
/// recognized: <= >= <> != ; all other punctuation is single-char.
Result<std::vector<Token>> Lex(const std::string& text, ParseError* error);

}  // namespace dcy::sql
