// Typed AST for the SQL dialect the front end accepts (ISSUE: select /
// project with arithmetic and comparisons, AND/OR, inner joins, group-by
// with sum/count/avg/min/max, order-by, limit; ISSUE-9 adds INSERT and
// DELETE). The parser builds it; the analyzer annotates it in place
// (resolved table, value type) before the plan builder lowers it to MAL.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bat/column.h"

namespace dcy::sql {

enum class BinOp { kAdd, kSub, kMul, kDiv, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

const char* BinOpName(BinOp op);

/// True for kEq..kGe (predicates), false for arithmetic and AND/OR.
bool IsComparison(BinOp op);
bool IsArithmetic(BinOp op);

enum class AggFn { kSum, kCount, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node. A tagged struct rather than a class hierarchy: the
/// grammar is small and the analyzer/planner switch on `kind` anyway.
struct Expr {
  enum class Kind {
    kColumnRef,  ///< [qualifier.]column
    kLiteral,    ///< number, string, or date literal
    kBinary,     ///< lhs op rhs
    kAggregate,  ///< agg(arg) or count(*)
  };
  Kind kind = Kind::kLiteral;
  size_t offset = 0;  ///< byte offset in the SQL text, for diagnostics

  // kColumnRef
  std::string qualifier;  ///< table name or alias; empty if unqualified
  std::string column;

  // kLiteral
  bat::Value literal;

  // kBinary
  BinOp op = BinOp::kAdd;
  ExprPtr lhs, rhs;

  // kAggregate
  AggFn agg = AggFn::kCount;
  ExprPtr arg;  ///< null for count(*)

  // ---- analyzer annotations -------------------------------------------------
  /// Resolved FROM-entry index for kColumnRef (-1 before analysis).
  int table_index = -1;
  /// Value type of the expression (comparisons/AND/OR are predicates and
  /// keep their operand bookkeeping elsewhere; `type` is meaningful for
  /// value-producing expressions only).
  bat::ValType type = bat::ValType::kLng;

  /// Renders the expression roughly as written (diagnostics, output names).
  std::string ToString() const;
};

ExprPtr MakeColumnRef(size_t offset, std::string qualifier, std::string column);
ExprPtr MakeLiteral(size_t offset, bat::Value v);
ExprPtr MakeBinary(size_t offset, BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAggregate(size_t offset, AggFn fn, ExprPtr arg);

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty if none; output name defaults to the expr text
  size_t offset = 0;
};

struct TableRef {
  std::string table;
  std::string alias;  ///< binding name: alias if given, else the table name
  size_t offset = 0;
};

struct OrderItem {
  /// Order keys must name an output column (select-list alias or column).
  std::string name;
  bool descending = false;
  size_t offset = 0;
  int item_index = -1;  ///< analyzer: index into SelectStmt::items
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  ///< null if absent
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

/// INSERT INTO t [(c, ...)] VALUES (v, ...)[, (v, ...)]*. Values must be
/// literal expressions (the analyzer enforces it); the engine has no
/// defaults or NULLs, so every table column must be covered.
struct InsertStmt {
  std::string table;
  size_t table_offset = 0;
  /// Explicit column list; empty = every table column in schema order.
  std::vector<std::string> columns;
  std::vector<size_t> column_offsets;  ///< aligned with `columns`
  std::vector<std::vector<ExprPtr>> rows;
};

/// DELETE FROM t [alias] [WHERE pred]. A null `where` deletes every row.
struct DeleteStmt {
  std::string table;
  std::string alias;  ///< binding name: alias if given, else the table name
  size_t table_offset = 0;
  ExprPtr where;  ///< null if absent
};

/// One parsed statement; `kind` selects which member is populated.
struct Statement {
  enum class Kind { kSelect, kInsert, kDelete };
  Kind kind = Kind::kSelect;
  SelectStmt select;
  InsertStmt insert;
  DeleteStmt del;
};

}  // namespace dcy::sql
