#include "sql/parser.h"

#include <cstdio>

#include "sql/lexer.h"

namespace dcy::sql {

namespace {

struct Parser {
  const std::string& text;
  std::vector<Token> tokens;
  size_t at = 0;
  ParseError* err;

  Parser(const std::string& t, std::vector<Token> toks, ParseError* e)
      : text(t), tokens(std::move(toks)), err(e) {}

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = at + ahead;
    return i < tokens.size() ? tokens[i] : tokens.back();  // back() is kEnd
  }
  const Token& Next() {
    const Token& t = Peek();
    if (at < tokens.size() - 1) ++at;
    return t;
  }
  bool ConsumeWord(const char* w) {
    if (Peek().IsWord(w)) {
      ++at;
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++at;
      return true;
    }
    return false;
  }

  Status Fail(std::string message) {
    const Token& t = Peek();
    return ParseFail(err, ParseError::At(text, t.offset, t.text, std::move(message)));
  }

  Result<std::string> Ident(const char* what) {
    if (Peek().kind != Token::Kind::kIdent) {
      return Fail(std::string("expected ") + what);
    }
    return Next().text;
  }

  // ---- expressions ----------------------------------------------------------

  Result<ExprPtr> Expression() { return OrExpr(); }

  Result<ExprPtr> OrExpr() {
    DCY_ASSIGN_OR_RETURN(ExprPtr e, AndExpr());
    while (Peek().IsWord("or")) {
      const size_t off = Next().offset;
      DCY_ASSIGN_OR_RETURN(ExprPtr r, AndExpr());
      e = MakeBinary(off, BinOp::kOr, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> AndExpr() {
    DCY_ASSIGN_OR_RETURN(ExprPtr e, CmpExpr());
    while (Peek().IsWord("and")) {
      const size_t off = Next().offset;
      DCY_ASSIGN_OR_RETURN(ExprPtr r, CmpExpr());
      e = MakeBinary(off, BinOp::kAnd, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> CmpExpr() {
    DCY_ASSIGN_OR_RETURN(ExprPtr e, AddExpr());
    const Token& t = Peek();
    BinOp op;
    if (t.IsSymbol("=")) {
      op = BinOp::kEq;
    } else if (t.IsSymbol("<>") || t.IsSymbol("!=")) {
      op = BinOp::kNe;
    } else if (t.IsSymbol("<")) {
      op = BinOp::kLt;
    } else if (t.IsSymbol("<=")) {
      op = BinOp::kLe;
    } else if (t.IsSymbol(">")) {
      op = BinOp::kGt;
    } else if (t.IsSymbol(">=")) {
      op = BinOp::kGe;
    } else {
      return e;  // no comparison
    }
    const size_t off = Next().offset;
    DCY_ASSIGN_OR_RETURN(ExprPtr r, AddExpr());
    return MakeBinary(off, op, std::move(e), std::move(r));
  }

  Result<ExprPtr> AddExpr() {
    DCY_ASSIGN_OR_RETURN(ExprPtr e, MulExpr());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      const BinOp op = Peek().IsSymbol("+") ? BinOp::kAdd : BinOp::kSub;
      const size_t off = Next().offset;
      DCY_ASSIGN_OR_RETURN(ExprPtr r, MulExpr());
      e = MakeBinary(off, op, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> MulExpr() {
    DCY_ASSIGN_OR_RETURN(ExprPtr e, Primary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      const BinOp op = Peek().IsSymbol("*") ? BinOp::kMul : BinOp::kDiv;
      const size_t off = Next().offset;
      DCY_ASSIGN_OR_RETURN(ExprPtr r, Primary());
      e = MakeBinary(off, op, std::move(e), std::move(r));
    }
    return e;
  }

  /// `date 'YYYY-MM-DD'` lowered to int64 yyyymmdd.
  Result<ExprPtr> DateLiteral(size_t off) {
    if (Peek().kind != Token::Kind::kString) {
      return Fail("expected 'YYYY-MM-DD' string after date");
    }
    const Token& t = Next();
    int y = 0, m = 0, d = 0;
    if (std::sscanf(t.text.c_str(), "%4d-%2d-%2d", &y, &m, &d) != 3 ||
        t.text.size() != 10 || m < 1 || m > 12 || d < 1 || d > 31) {
      return ParseFail(err,
                       ParseError::At(text, t.offset, t.text, "malformed date literal"));
    }
    return MakeLiteral(off, bat::Value::MakeLng(int64_t{10000} * y + 100 * m + d));
  }

  Result<ExprPtr> Aggregate(AggFn fn) {
    const size_t off = Next().offset;  // the function-name token
    if (!ConsumeSymbol("(")) return Fail("expected '(' after aggregate");
    ExprPtr arg;
    if (fn == AggFn::kCount && ConsumeSymbol("*")) {
      // count(*) — no argument
    } else {
      DCY_ASSIGN_OR_RETURN(arg, Expression());
    }
    if (!ConsumeSymbol(")")) return Fail("expected ')' after aggregate argument");
    return MakeAggregate(off, fn, std::move(arg));
  }

  Result<ExprPtr> Primary() {
    const Token& t = Peek();
    switch (t.kind) {
      case Token::Kind::kInt: {
        Next();
        return MakeLiteral(t.offset, bat::Value::MakeLng(t.i));
      }
      case Token::Kind::kFloat: {
        Next();
        return MakeLiteral(t.offset, bat::Value::MakeDbl(t.d));
      }
      case Token::Kind::kString: {
        Next();
        return MakeLiteral(t.offset, bat::Value::MakeStr(t.text));
      }
      case Token::Kind::kSymbol:
        if (t.IsSymbol("(")) {
          Next();
          DCY_ASSIGN_OR_RETURN(ExprPtr e, Expression());
          if (!ConsumeSymbol(")")) return Fail("expected ')'");
          return e;
        }
        if (t.IsSymbol("-")) {
          // Unary minus on a numeric literal.
          Next();
          const Token& n = Peek();
          if (n.kind == Token::Kind::kInt) {
            Next();
            return MakeLiteral(t.offset, bat::Value::MakeLng(-n.i));
          }
          if (n.kind == Token::Kind::kFloat) {
            Next();
            return MakeLiteral(t.offset, bat::Value::MakeDbl(-n.d));
          }
          return Fail("expected numeric literal after unary '-'");
        }
        return Fail("expected expression");
      case Token::Kind::kIdent: {
        if (t.IsWord("date")) {
          Next();
          return DateLiteral(t.offset);
        }
        if (t.IsWord("sum")) return Aggregate(AggFn::kSum);
        if (t.IsWord("count")) return Aggregate(AggFn::kCount);
        if (t.IsWord("avg")) return Aggregate(AggFn::kAvg);
        if (t.IsWord("min")) return Aggregate(AggFn::kMin);
        if (t.IsWord("max")) return Aggregate(AggFn::kMax);
        Next();
        if (ConsumeSymbol(".")) {
          DCY_ASSIGN_OR_RETURN(std::string col, Ident("column name after '.'"));
          return MakeColumnRef(t.offset, t.text, std::move(col));
        }
        return MakeColumnRef(t.offset, "", t.text);
      }
      case Token::Kind::kEnd: return Fail("unexpected end of query");
    }
    return Fail("expected expression");
  }

  // ---- clauses --------------------------------------------------------------

  /// Keywords that terminate the current clause.
  bool AtClauseBoundary() const {
    const Token& t = Peek();
    return t.kind == Token::Kind::kEnd || t.IsSymbol(";") || t.IsWord("from") ||
           t.IsWord("where") || t.IsWord("group") || t.IsWord("order") || t.IsWord("limit");
  }

  Result<SelectItem> Item() {
    SelectItem item;
    item.offset = Peek().offset;
    DCY_ASSIGN_OR_RETURN(item.expr, Expression());
    if (ConsumeWord("as")) {
      DCY_ASSIGN_OR_RETURN(item.alias, Ident("alias after AS"));
    } else if (Peek().kind == Token::Kind::kIdent && !AtClauseBoundary()) {
      item.alias = Next().text;
    }
    return item;
  }

  /// Consumes the optional trailing ';' and requires end-of-input.
  Status Finish() {
    ConsumeSymbol(";");
    if (Peek().kind != Token::Kind::kEnd) return Fail("unexpected input after statement");
    return Status::OK();
  }

  Result<SelectStmt> Select() {
    SelectStmt stmt;
    if (!ConsumeWord("select")) return Fail("expected SELECT");
    do {
      DCY_ASSIGN_OR_RETURN(SelectItem item, Item());
      stmt.items.push_back(std::move(item));
    } while (ConsumeSymbol(","));

    if (!ConsumeWord("from")) return Fail("expected FROM");
    do {
      TableRef ref;
      ref.offset = Peek().offset;
      DCY_ASSIGN_OR_RETURN(ref.table, Ident("table name"));
      if (ConsumeWord("as")) {
        DCY_ASSIGN_OR_RETURN(ref.alias, Ident("alias after AS"));
      } else if (Peek().kind == Token::Kind::kIdent && !AtClauseBoundary()) {
        ref.alias = Next().text;
      } else {
        ref.alias = ref.table;
      }
      stmt.from.push_back(std::move(ref));
    } while (ConsumeSymbol(","));

    if (ConsumeWord("where")) {
      DCY_ASSIGN_OR_RETURN(stmt.where, Expression());
    }

    if (ConsumeWord("group")) {
      if (!ConsumeWord("by")) return Fail("expected BY after GROUP");
      do {
        DCY_ASSIGN_OR_RETURN(ExprPtr e, Primary());
        if (e->kind != Expr::Kind::kColumnRef) {
          return ParseFail(err, ParseError::At(text, e->offset, e->ToString(),
                                               "GROUP BY supports column names only"));
        }
        stmt.group_by.push_back(std::move(e));
      } while (ConsumeSymbol(","));
    }

    if (ConsumeWord("order")) {
      if (!ConsumeWord("by")) return Fail("expected BY after ORDER");
      do {
        OrderItem key;
        key.offset = Peek().offset;
        DCY_ASSIGN_OR_RETURN(key.name, Ident("output column name in ORDER BY"));
        if (ConsumeWord("desc")) {
          key.descending = true;
        } else {
          ConsumeWord("asc");
        }
        stmt.order_by.push_back(std::move(key));
      } while (ConsumeSymbol(","));
    }

    if (ConsumeWord("limit")) {
      if (Peek().kind != Token::Kind::kInt) return Fail("expected integer after LIMIT");
      stmt.limit = Next().i;
    }

    DCY_RETURN_NOT_OK(Finish());
    return stmt;
  }

  // ---- writes (ISSUE-9) -----------------------------------------------------

  Result<InsertStmt> Insert() {
    InsertStmt stmt;
    if (!ConsumeWord("insert")) return Fail("expected INSERT");
    if (!ConsumeWord("into")) return Fail("expected INTO after INSERT");
    stmt.table_offset = Peek().offset;
    DCY_ASSIGN_OR_RETURN(stmt.table, Ident("table name"));

    if (ConsumeSymbol("(")) {
      do {
        stmt.column_offsets.push_back(Peek().offset);
        DCY_ASSIGN_OR_RETURN(std::string col, Ident("column name"));
        stmt.columns.push_back(std::move(col));
      } while (ConsumeSymbol(","));
      if (!ConsumeSymbol(")")) return Fail("expected ')' after column list");
    }

    if (!ConsumeWord("values")) return Fail("expected VALUES");
    do {
      if (!ConsumeSymbol("(")) return Fail("expected '(' to open a VALUES row");
      std::vector<ExprPtr> row;
      do {
        DCY_ASSIGN_OR_RETURN(ExprPtr v, Expression());
        row.push_back(std::move(v));
      } while (ConsumeSymbol(","));
      if (!ConsumeSymbol(")")) return Fail("expected ')' after VALUES row");
      stmt.rows.push_back(std::move(row));
    } while (ConsumeSymbol(","));

    DCY_RETURN_NOT_OK(Finish());
    return stmt;
  }

  Result<DeleteStmt> Delete() {
    DeleteStmt stmt;
    if (!ConsumeWord("delete")) return Fail("expected DELETE");
    if (!ConsumeWord("from")) return Fail("expected FROM after DELETE");
    stmt.table_offset = Peek().offset;
    DCY_ASSIGN_OR_RETURN(stmt.table, Ident("table name"));
    if (Peek().kind == Token::Kind::kIdent && !Peek().IsWord("where")) {
      stmt.alias = Next().text;
    } else {
      stmt.alias = stmt.table;
    }
    if (ConsumeWord("where")) {
      DCY_ASSIGN_OR_RETURN(stmt.where, Expression());
    }
    DCY_RETURN_NOT_OK(Finish());
    return stmt;
  }

  Result<sql::Statement> Top() {
    sql::Statement s;
    if (Peek().IsWord("select")) {
      s.kind = sql::Statement::Kind::kSelect;
      DCY_ASSIGN_OR_RETURN(s.select, Select());
      return s;
    }
    if (Peek().IsWord("insert")) {
      s.kind = sql::Statement::Kind::kInsert;
      DCY_ASSIGN_OR_RETURN(s.insert, Insert());
      return s;
    }
    if (Peek().IsWord("delete")) {
      s.kind = sql::Statement::Kind::kDelete;
      DCY_ASSIGN_OR_RETURN(s.del, Delete());
      return s;
    }
    return Fail("expected SELECT, INSERT, or DELETE");
  }
};

}  // namespace

Result<SelectStmt> ParseSelect(const std::string& text, ParseError* error) {
  DCY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text, error));
  Parser p(text, std::move(tokens), error);
  return p.Select();
}

Result<Statement> ParseStatement(const std::string& text, ParseError* error) {
  DCY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text, error));
  Parser p(text, std::move(tokens), error);
  return p.Top();
}

}  // namespace dcy::sql
