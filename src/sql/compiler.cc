#include "sql/compiler.h"

#include <cctype>

#include "sql/analyzer.h"
#include "sql/parser.h"
#include "sql/plan_builder.h"

namespace dcy::sql {

Result<mal::Program> Compile(const std::string& sql, const Schema& schema,
                             ParseError* error) {
  DCY_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql, error));
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      DCY_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                           Analyze(std::move(stmt.select), schema, sql, error));
      return BuildPlan(analyzed, schema, sql, error);
    }
    case Statement::Kind::kInsert: {
      DCY_ASSIGN_OR_RETURN(AnalyzedInsert ins,
                           AnalyzeInsert(std::move(stmt.insert), schema, sql, error));
      return BuildInsertPlan(ins);
    }
    case Statement::Kind::kDelete: {
      DCY_ASSIGN_OR_RETURN(AnalyzedDelete del,
                           AnalyzeDelete(std::move(stmt.del), schema, sql, error));
      return BuildDeletePlan(std::move(del), schema, sql, error);
    }
  }
  return Status::FailedPrecondition("unreachable statement kind");
}

bool LooksLikeSql(const std::string& text) {
  size_t pos = 0;
  while (pos < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      continue;
    }
    if (text[pos] == '#' ||
        (text[pos] == '-' && pos + 1 < text.size() && text[pos + 1] == '-')) {
      while (pos < text.size() && text[pos] != '\n') ++pos;
      continue;
    }
    break;
  }
  for (const char* kw : {"select", "insert", "delete"}) {
    const size_t len = std::char_traits<char>::length(kw);
    bool match = true;
    for (size_t k = 0; k < len && match; ++k) {
      match = pos + k < text.size() &&
              std::tolower(static_cast<unsigned char>(text[pos + k])) == kw[k];
    }
    if (!match) continue;
    const char after = pos + len < text.size() ? text[pos + len] : '\0';
    if (std::isalnum(static_cast<unsigned char>(after)) == 0 && after != '_') {
      return true;
    }
  }
  return false;
}

}  // namespace dcy::sql
