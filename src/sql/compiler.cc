#include "sql/compiler.h"

#include <cctype>

#include "sql/analyzer.h"
#include "sql/parser.h"
#include "sql/plan_builder.h"

namespace dcy::sql {

Result<mal::Program> Compile(const std::string& sql, const Schema& schema,
                             ParseError* error) {
  DCY_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql, error));
  DCY_ASSIGN_OR_RETURN(AnalyzedQuery analyzed, Analyze(std::move(stmt), schema, sql, error));
  return BuildPlan(analyzed, schema, sql, error);
}

bool LooksLikeSql(const std::string& text) {
  size_t pos = 0;
  while (pos < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      continue;
    }
    if (text[pos] == '#' ||
        (text[pos] == '-' && pos + 1 < text.size() && text[pos + 1] == '-')) {
      while (pos < text.size() && text[pos] != '\n') ++pos;
      continue;
    }
    break;
  }
  const char* kSelect = "select";
  for (size_t k = 0; k < 6; ++k) {
    if (pos + k >= text.size() ||
        std::tolower(static_cast<unsigned char>(text[pos + k])) != kSelect[k]) {
      return false;
    }
  }
  const char after = pos + 6 < text.size() ? text[pos + 6] : '\0';
  return std::isalnum(static_cast<unsigned char>(after)) == 0 && after != '_';
}

}  // namespace dcy::sql
