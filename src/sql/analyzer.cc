#include "sql/analyzer.h"

namespace dcy::sql {

namespace {

bool IsNumeric(bat::ValType t) { return t != bat::ValType::kStr; }

struct Analyzer {
  const Schema& schema;
  const std::string& text;
  ParseError* err;
  SelectStmt& stmt;

  Status Fail(size_t offset, const std::string& token, std::string message) {
    return ParseFail(err, ParseError::At(text, offset, token, std::move(message)));
  }

  // ---- name resolution ------------------------------------------------------

  Status ResolveFrom() {
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      TableRef& ref = stmt.from[i];
      if (!schema.HasTable(ref.table)) {
        return Fail(ref.offset, ref.table, "unknown table \"" + ref.table + "\"");
      }
      for (size_t j = 0; j < i; ++j) {
        if (stmt.from[j].alias == ref.alias) {
          return Fail(ref.offset, ref.alias, "duplicate table alias \"" + ref.alias + "\"");
        }
      }
    }
    return Status::OK();
  }

  Status ResolveColumn(Expr& e) {
    if (!e.qualifier.empty()) {
      for (size_t i = 0; i < stmt.from.size(); ++i) {
        if (stmt.from[i].alias != e.qualifier) continue;
        const Schema::Column* col = schema.FindColumn(stmt.from[i].table, e.column);
        if (col == nullptr) {
          return Fail(e.offset, e.column, "unknown column \"" + e.qualifier + "." +
                                              e.column + "\"");
        }
        e.table_index = static_cast<int>(i);
        e.type = col->type;
        return Status::OK();
      }
      return Fail(e.offset, e.qualifier, "unknown table alias \"" + e.qualifier + "\"");
    }
    int found = -1;
    const Schema::Column* found_col = nullptr;
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      const Schema::Column* col = schema.FindColumn(stmt.from[i].table, e.column);
      if (col == nullptr) continue;
      if (found >= 0) {
        return Fail(e.offset, e.column, "ambiguous column \"" + e.column + "\"");
      }
      found = static_cast<int>(i);
      found_col = col;
    }
    if (found < 0) {
      return Fail(e.offset, e.column, "unknown column \"" + e.column + "\"");
    }
    e.table_index = found;
    e.type = found_col->type;
    return Status::OK();
  }

  // ---- type checking --------------------------------------------------------

  /// Type-checks a value-producing expression (no AND/OR/comparisons) and
  /// annotates `e.type`. `in_aggregate` bans nesting; `allow_aggregates`
  /// bans aggregates outright (WHERE, GROUP BY).
  Status CheckValue(Expr& e, bool allow_aggregates, bool in_aggregate) {
    switch (e.kind) {
      case Expr::Kind::kColumnRef:
        DCY_RETURN_NOT_OK(ResolveColumn(e));
        return Status::OK();
      case Expr::Kind::kLiteral:
        e.type = e.literal.type;
        return Status::OK();
      case Expr::Kind::kBinary: {
        if (!IsArithmetic(e.op)) {
          return Fail(e.offset, BinOpName(e.op), "predicate not allowed here");
        }
        DCY_RETURN_NOT_OK(CheckValue(*e.lhs, allow_aggregates, in_aggregate));
        DCY_RETURN_NOT_OK(CheckValue(*e.rhs, allow_aggregates, in_aggregate));
        if (!IsNumeric(e.lhs->type) || !IsNumeric(e.rhs->type)) {
          return Fail(e.offset, BinOpName(e.op),
                      std::string("arithmetic on non-numeric operand (") +
                          bat::ValTypeName(e.lhs->type) + " " + BinOpName(e.op) + " " +
                          bat::ValTypeName(e.rhs->type) + ")");
        }
        e.type = bat::ValType::kDbl;  // batcalc widens to double
        return Status::OK();
      }
      case Expr::Kind::kAggregate: {
        if (!allow_aggregates) {
          return Fail(e.offset, AggFnName(e.agg), "aggregate not allowed here");
        }
        if (in_aggregate) {
          return Fail(e.offset, AggFnName(e.agg), "nested aggregates are not supported");
        }
        if (e.arg == nullptr) {
          if (e.agg != AggFn::kCount) {
            return Fail(e.offset, AggFnName(e.agg), "only count(*) takes no argument");
          }
          e.type = bat::ValType::kLng;
          return Status::OK();
        }
        DCY_RETURN_NOT_OK(CheckValue(*e.arg, allow_aggregates, /*in_aggregate=*/true));
        switch (e.agg) {
          case AggFn::kCount:
            e.type = bat::ValType::kLng;
            break;
          case AggFn::kSum:
          case AggFn::kAvg:
            if (!IsNumeric(e.arg->type)) {
              return Fail(e.offset, AggFnName(e.agg),
                          std::string(AggFnName(e.agg)) + " of a non-numeric column");
            }
            e.type = bat::ValType::kDbl;
            break;
          case AggFn::kMin:
          case AggFn::kMax:
            if (!IsNumeric(e.arg->type)) {
              return Fail(e.offset, AggFnName(e.agg),
                          std::string(AggFnName(e.agg)) + " of a non-numeric column");
            }
            e.type = e.arg->type == bat::ValType::kDbl ? bat::ValType::kDbl
                                                       : bat::ValType::kLng;
            break;
        }
        return Status::OK();
      }
    }
    return Status::FailedPrecondition("unreachable expression kind");
  }

  /// Type-checks a predicate (WHERE tree): AND/OR over comparisons.
  Status CheckPredicate(Expr& e) {
    if (e.kind != Expr::Kind::kBinary) {
      return Fail(e.offset, e.ToString(), "expected a predicate");
    }
    if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
      DCY_RETURN_NOT_OK(CheckPredicate(*e.lhs));
      return CheckPredicate(*e.rhs);
    }
    if (!IsComparison(e.op)) {
      return Fail(e.offset, BinOpName(e.op), "expected a predicate");
    }
    DCY_RETURN_NOT_OK(CheckValue(*e.lhs, /*allow_aggregates=*/false, false));
    DCY_RETURN_NOT_OK(CheckValue(*e.rhs, /*allow_aggregates=*/false, false));
    const bool ls = e.lhs->type == bat::ValType::kStr;
    const bool rs = e.rhs->type == bat::ValType::kStr;
    if (ls != rs) {
      return Fail(e.offset, BinOpName(e.op),
                  std::string("type mismatch in comparison (") +
                      bat::ValTypeName(e.lhs->type) + " " + BinOpName(e.op) + " " +
                      bat::ValTypeName(e.rhs->type) + ")");
    }
    return Status::OK();
  }

  // ---- aggregate / group-by validation --------------------------------------

  bool ContainsAggregate(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kAggregate: return true;
      case Expr::Kind::kBinary:
        return ContainsAggregate(*e.lhs) || ContainsAggregate(*e.rhs);
      default: return false;
    }
  }

  bool IsGroupColumn(const Expr& e) const {
    for (const auto& g : stmt.group_by) {
      if (g->table_index == e.table_index && g->column == e.column) return true;
    }
    return false;
  }

  /// In a grouped query, every column ref outside an aggregate must be a
  /// GROUP BY column.
  Status CheckGrouped(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kColumnRef:
        if (!IsGroupColumn(e)) {
          return Fail(e.offset, e.column,
                      "column \"" + e.column + "\" must appear in GROUP BY or an aggregate");
        }
        return Status::OK();
      case Expr::Kind::kBinary:
        DCY_RETURN_NOT_OK(CheckGrouped(*e.lhs));
        return CheckGrouped(*e.rhs);
      case Expr::Kind::kAggregate:
      case Expr::Kind::kLiteral:
        return Status::OK();
    }
    return Status::OK();
  }

  Result<AnalyzedQuery> Run() {
    if (stmt.items.empty()) return Status::InvalidArgument("empty select list");
    DCY_RETURN_NOT_OK(ResolveFrom());

    if (stmt.where != nullptr) DCY_RETURN_NOT_OK(CheckPredicate(*stmt.where));
    for (auto& g : stmt.group_by) {
      DCY_RETURN_NOT_OK(CheckValue(*g, /*allow_aggregates=*/false, false));
    }

    AnalyzedQuery out;
    bool any_aggregate = false;
    for (auto& item : stmt.items) {
      DCY_RETURN_NOT_OK(CheckValue(*item.expr, /*allow_aggregates=*/true, false));
      any_aggregate = any_aggregate || ContainsAggregate(*item.expr);
    }
    out.grouped = any_aggregate || !stmt.group_by.empty();
    if (out.grouped) {
      for (const auto& item : stmt.items) {
        DCY_RETURN_NOT_OK(CheckGrouped(*item.expr));
      }
    }

    for (const auto& item : stmt.items) {
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == Expr::Kind::kColumnRef ? item.expr->column
                                                         : item.expr->ToString();
      }
      out.output_names.push_back(std::move(name));
      out.output_types.push_back(item.expr->type);
    }

    for (auto& key : stmt.order_by) {
      key.item_index = -1;
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const bool alias_match = stmt.items[i].alias == key.name;
        const bool col_match = stmt.items[i].expr->kind == Expr::Kind::kColumnRef &&
                               stmt.items[i].expr->column == key.name;
        if (alias_match || col_match) {
          key.item_index = static_cast<int>(i);
          break;
        }
      }
      if (key.item_index < 0) {
        return Fail(key.offset, key.name,
                    "ORDER BY key \"" + key.name + "\" is not an output column");
      }
      if (key.descending &&
          out.output_types[key.item_index] == bat::ValType::kStr) {
        return Fail(key.offset, key.name, "ORDER BY ... DESC on a string column");
      }
    }

    if (stmt.limit.has_value() && *stmt.limit < 0) {
      return Status::InvalidArgument("LIMIT must be non-negative");
    }

    out.stmt = std::move(stmt);
    return out;
  }
};

}  // namespace

Result<AnalyzedQuery> Analyze(SelectStmt stmt, const Schema& schema,
                              const std::string& text, ParseError* error) {
  Analyzer a{schema, text, error, stmt};
  return a.Run();
}

// ---- writes (ISSUE-9) -------------------------------------------------------

namespace {

bool IsIntFamily(bat::ValType t) {
  return t == bat::ValType::kOid || t == bat::ValType::kInt ||
         t == bat::ValType::kLng || t == bat::ValType::kDate;
}

/// Checks one VALUES entry against its target column and returns the value
/// coerced to the column's type family.
Result<bat::Value> CoerceLiteral(const Expr& e, const Schema::Column& col,
                                 const std::string& text, ParseError* err) {
  if (e.kind != Expr::Kind::kLiteral) {
    return ParseFail(err, ParseError::At(text, e.offset, e.ToString(),
                                         "INSERT values must be literals"));
  }
  const bat::Value& v = e.literal;
  const auto mismatch = [&]() {
    return ParseFail(err, ParseError::At(
                              text, e.offset, e.ToString(),
                              std::string("value of type ") + bat::ValTypeName(v.type) +
                                  " for column \"" + col.name + "\" of type " +
                                  bat::ValTypeName(col.type)));
  };
  switch (col.type) {
    case bat::ValType::kStr:
      if (v.type != bat::ValType::kStr) return mismatch();
      return v;
    case bat::ValType::kDbl:
      if (v.type == bat::ValType::kDbl) return v;
      if (IsIntFamily(v.type)) return bat::Value::MakeDbl(static_cast<double>(v.i));
      return mismatch();
    default:  // int family: oid, int, bigint, date
      if (!IsIntFamily(v.type)) return mismatch();
      return v;
  }
}

}  // namespace

Result<AnalyzedInsert> AnalyzeInsert(InsertStmt stmt, const Schema& schema,
                                     const std::string& text, ParseError* error) {
  const auto fail = [&](size_t offset, const std::string& token, std::string message) {
    return ParseFail(error, ParseError::At(text, offset, token, std::move(message)));
  };
  if (!schema.HasTable(stmt.table)) {
    return fail(stmt.table_offset, stmt.table, "unknown table \"" + stmt.table + "\"");
  }
  AnalyzedInsert out;
  out.table = stmt.table;
  out.columns = schema.TableColumns(stmt.table);

  // Map each table column to its position in the VALUES rows. An explicit
  // column list must cover the table exactly (no defaults or NULLs exist).
  std::vector<size_t> source(out.columns.size());
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < source.size(); ++i) source[i] = i;
  } else {
    std::vector<bool> claimed(out.columns.size(), false);
    if (stmt.columns.size() != out.columns.size()) {
      return fail(stmt.table_offset, stmt.table,
                  "INSERT must cover every column of \"" + stmt.table + "\" (" +
                      std::to_string(out.columns.size()) + " columns, got " +
                      std::to_string(stmt.columns.size()) + ")");
    }
    for (size_t j = 0; j < stmt.columns.size(); ++j) {
      bool found = false;
      for (size_t i = 0; i < out.columns.size(); ++i) {
        if (out.columns[i].name != stmt.columns[j]) continue;
        if (claimed[i]) {
          return fail(stmt.column_offsets[j], stmt.columns[j],
                      "duplicate column \"" + stmt.columns[j] + "\" in INSERT");
        }
        claimed[i] = true;
        source[i] = j;
        found = true;
        break;
      }
      if (!found) {
        return fail(stmt.column_offsets[j], stmt.columns[j],
                    "unknown column \"" + stmt.columns[j] + "\" in table \"" +
                        stmt.table + "\"");
      }
    }
  }

  if (stmt.rows.empty()) {
    return fail(stmt.table_offset, stmt.table, "INSERT requires at least one VALUES row");
  }
  out.values.resize(out.columns.size());
  for (const auto& row : stmt.rows) {
    if (row.size() != out.columns.size()) {
      const size_t off = row.empty() ? stmt.table_offset : row[0]->offset;
      return fail(off, stmt.table,
                  "VALUES row has " + std::to_string(row.size()) + " values, expected " +
                      std::to_string(out.columns.size()));
    }
    for (size_t i = 0; i < out.columns.size(); ++i) {
      DCY_ASSIGN_OR_RETURN(bat::Value v,
                           CoerceLiteral(*row[source[i]], out.columns[i], text, error));
      out.values[i].push_back(std::move(v));
    }
  }
  out.rows = static_cast<int64_t>(stmt.rows.size());
  return out;
}

Result<AnalyzedDelete> AnalyzeDelete(DeleteStmt stmt, const Schema& schema,
                                     const std::string& text, ParseError* error) {
  // Reuse the SELECT analyzer through a single-table shell statement.
  SelectStmt shell;
  TableRef ref;
  ref.table = stmt.table;
  ref.alias = stmt.alias.empty() ? stmt.table : stmt.alias;
  ref.offset = stmt.table_offset;
  shell.from.push_back(std::move(ref));
  shell.where = std::move(stmt.where);

  Analyzer a{schema, text, error, shell};
  DCY_RETURN_NOT_OK(a.ResolveFrom());
  if (shell.where != nullptr) DCY_RETURN_NOT_OK(a.CheckPredicate(*shell.where));

  stmt.where = std::move(shell.where);
  AnalyzedDelete out;
  out.stmt = std::move(stmt);
  return out;
}

}  // namespace dcy::sql
