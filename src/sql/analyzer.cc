#include "sql/analyzer.h"

namespace dcy::sql {

namespace {

bool IsNumeric(bat::ValType t) { return t != bat::ValType::kStr; }

struct Analyzer {
  const Schema& schema;
  const std::string& text;
  ParseError* err;
  SelectStmt& stmt;

  Status Fail(size_t offset, const std::string& token, std::string message) {
    return ParseFail(err, ParseError::At(text, offset, token, std::move(message)));
  }

  // ---- name resolution ------------------------------------------------------

  Status ResolveFrom() {
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      TableRef& ref = stmt.from[i];
      if (!schema.HasTable(ref.table)) {
        return Fail(ref.offset, ref.table, "unknown table \"" + ref.table + "\"");
      }
      for (size_t j = 0; j < i; ++j) {
        if (stmt.from[j].alias == ref.alias) {
          return Fail(ref.offset, ref.alias, "duplicate table alias \"" + ref.alias + "\"");
        }
      }
    }
    return Status::OK();
  }

  Status ResolveColumn(Expr& e) {
    if (!e.qualifier.empty()) {
      for (size_t i = 0; i < stmt.from.size(); ++i) {
        if (stmt.from[i].alias != e.qualifier) continue;
        const Schema::Column* col = schema.FindColumn(stmt.from[i].table, e.column);
        if (col == nullptr) {
          return Fail(e.offset, e.column, "unknown column \"" + e.qualifier + "." +
                                              e.column + "\"");
        }
        e.table_index = static_cast<int>(i);
        e.type = col->type;
        return Status::OK();
      }
      return Fail(e.offset, e.qualifier, "unknown table alias \"" + e.qualifier + "\"");
    }
    int found = -1;
    const Schema::Column* found_col = nullptr;
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      const Schema::Column* col = schema.FindColumn(stmt.from[i].table, e.column);
      if (col == nullptr) continue;
      if (found >= 0) {
        return Fail(e.offset, e.column, "ambiguous column \"" + e.column + "\"");
      }
      found = static_cast<int>(i);
      found_col = col;
    }
    if (found < 0) {
      return Fail(e.offset, e.column, "unknown column \"" + e.column + "\"");
    }
    e.table_index = found;
    e.type = found_col->type;
    return Status::OK();
  }

  // ---- type checking --------------------------------------------------------

  /// Type-checks a value-producing expression (no AND/OR/comparisons) and
  /// annotates `e.type`. `in_aggregate` bans nesting; `allow_aggregates`
  /// bans aggregates outright (WHERE, GROUP BY).
  Status CheckValue(Expr& e, bool allow_aggregates, bool in_aggregate) {
    switch (e.kind) {
      case Expr::Kind::kColumnRef:
        DCY_RETURN_NOT_OK(ResolveColumn(e));
        return Status::OK();
      case Expr::Kind::kLiteral:
        e.type = e.literal.type;
        return Status::OK();
      case Expr::Kind::kBinary: {
        if (!IsArithmetic(e.op)) {
          return Fail(e.offset, BinOpName(e.op), "predicate not allowed here");
        }
        DCY_RETURN_NOT_OK(CheckValue(*e.lhs, allow_aggregates, in_aggregate));
        DCY_RETURN_NOT_OK(CheckValue(*e.rhs, allow_aggregates, in_aggregate));
        if (!IsNumeric(e.lhs->type) || !IsNumeric(e.rhs->type)) {
          return Fail(e.offset, BinOpName(e.op),
                      std::string("arithmetic on non-numeric operand (") +
                          bat::ValTypeName(e.lhs->type) + " " + BinOpName(e.op) + " " +
                          bat::ValTypeName(e.rhs->type) + ")");
        }
        e.type = bat::ValType::kDbl;  // batcalc widens to double
        return Status::OK();
      }
      case Expr::Kind::kAggregate: {
        if (!allow_aggregates) {
          return Fail(e.offset, AggFnName(e.agg), "aggregate not allowed here");
        }
        if (in_aggregate) {
          return Fail(e.offset, AggFnName(e.agg), "nested aggregates are not supported");
        }
        if (e.arg == nullptr) {
          if (e.agg != AggFn::kCount) {
            return Fail(e.offset, AggFnName(e.agg), "only count(*) takes no argument");
          }
          e.type = bat::ValType::kLng;
          return Status::OK();
        }
        DCY_RETURN_NOT_OK(CheckValue(*e.arg, allow_aggregates, /*in_aggregate=*/true));
        switch (e.agg) {
          case AggFn::kCount:
            e.type = bat::ValType::kLng;
            break;
          case AggFn::kSum:
          case AggFn::kAvg:
            if (!IsNumeric(e.arg->type)) {
              return Fail(e.offset, AggFnName(e.agg),
                          std::string(AggFnName(e.agg)) + " of a non-numeric column");
            }
            e.type = bat::ValType::kDbl;
            break;
          case AggFn::kMin:
          case AggFn::kMax:
            if (!IsNumeric(e.arg->type)) {
              return Fail(e.offset, AggFnName(e.agg),
                          std::string(AggFnName(e.agg)) + " of a non-numeric column");
            }
            e.type = e.arg->type == bat::ValType::kDbl ? bat::ValType::kDbl
                                                       : bat::ValType::kLng;
            break;
        }
        return Status::OK();
      }
    }
    return Status::FailedPrecondition("unreachable expression kind");
  }

  /// Type-checks a predicate (WHERE tree): AND/OR over comparisons.
  Status CheckPredicate(Expr& e) {
    if (e.kind != Expr::Kind::kBinary) {
      return Fail(e.offset, e.ToString(), "expected a predicate");
    }
    if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
      DCY_RETURN_NOT_OK(CheckPredicate(*e.lhs));
      return CheckPredicate(*e.rhs);
    }
    if (!IsComparison(e.op)) {
      return Fail(e.offset, BinOpName(e.op), "expected a predicate");
    }
    DCY_RETURN_NOT_OK(CheckValue(*e.lhs, /*allow_aggregates=*/false, false));
    DCY_RETURN_NOT_OK(CheckValue(*e.rhs, /*allow_aggregates=*/false, false));
    const bool ls = e.lhs->type == bat::ValType::kStr;
    const bool rs = e.rhs->type == bat::ValType::kStr;
    if (ls != rs) {
      return Fail(e.offset, BinOpName(e.op),
                  std::string("type mismatch in comparison (") +
                      bat::ValTypeName(e.lhs->type) + " " + BinOpName(e.op) + " " +
                      bat::ValTypeName(e.rhs->type) + ")");
    }
    return Status::OK();
  }

  // ---- aggregate / group-by validation --------------------------------------

  bool ContainsAggregate(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kAggregate: return true;
      case Expr::Kind::kBinary:
        return ContainsAggregate(*e.lhs) || ContainsAggregate(*e.rhs);
      default: return false;
    }
  }

  bool IsGroupColumn(const Expr& e) const {
    for (const auto& g : stmt.group_by) {
      if (g->table_index == e.table_index && g->column == e.column) return true;
    }
    return false;
  }

  /// In a grouped query, every column ref outside an aggregate must be a
  /// GROUP BY column.
  Status CheckGrouped(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kColumnRef:
        if (!IsGroupColumn(e)) {
          return Fail(e.offset, e.column,
                      "column \"" + e.column + "\" must appear in GROUP BY or an aggregate");
        }
        return Status::OK();
      case Expr::Kind::kBinary:
        DCY_RETURN_NOT_OK(CheckGrouped(*e.lhs));
        return CheckGrouped(*e.rhs);
      case Expr::Kind::kAggregate:
      case Expr::Kind::kLiteral:
        return Status::OK();
    }
    return Status::OK();
  }

  Result<AnalyzedQuery> Run() {
    if (stmt.items.empty()) return Status::InvalidArgument("empty select list");
    DCY_RETURN_NOT_OK(ResolveFrom());

    if (stmt.where != nullptr) DCY_RETURN_NOT_OK(CheckPredicate(*stmt.where));
    for (auto& g : stmt.group_by) {
      DCY_RETURN_NOT_OK(CheckValue(*g, /*allow_aggregates=*/false, false));
    }

    AnalyzedQuery out;
    bool any_aggregate = false;
    for (auto& item : stmt.items) {
      DCY_RETURN_NOT_OK(CheckValue(*item.expr, /*allow_aggregates=*/true, false));
      any_aggregate = any_aggregate || ContainsAggregate(*item.expr);
    }
    out.grouped = any_aggregate || !stmt.group_by.empty();
    if (out.grouped) {
      for (const auto& item : stmt.items) {
        DCY_RETURN_NOT_OK(CheckGrouped(*item.expr));
      }
    }

    for (const auto& item : stmt.items) {
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == Expr::Kind::kColumnRef ? item.expr->column
                                                         : item.expr->ToString();
      }
      out.output_names.push_back(std::move(name));
      out.output_types.push_back(item.expr->type);
    }

    for (auto& key : stmt.order_by) {
      key.item_index = -1;
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const bool alias_match = stmt.items[i].alias == key.name;
        const bool col_match = stmt.items[i].expr->kind == Expr::Kind::kColumnRef &&
                               stmt.items[i].expr->column == key.name;
        if (alias_match || col_match) {
          key.item_index = static_cast<int>(i);
          break;
        }
      }
      if (key.item_index < 0) {
        return Fail(key.offset, key.name,
                    "ORDER BY key \"" + key.name + "\" is not an output column");
      }
      if (key.descending &&
          out.output_types[key.item_index] == bat::ValType::kStr) {
        return Fail(key.offset, key.name, "ORDER BY ... DESC on a string column");
      }
    }

    if (stmt.limit.has_value() && *stmt.limit < 0) {
      return Status::InvalidArgument("LIMIT must be non-negative");
    }

    out.stmt = std::move(stmt);
    return out;
  }
};

}  // namespace

Result<AnalyzedQuery> Analyze(SelectStmt stmt, const Schema& schema,
                              const std::string& text, ParseError* error) {
  Analyzer a{schema, text, error, stmt};
  return a.Run();
}

}  // namespace dcy::sql
