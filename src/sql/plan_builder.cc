#include "sql/plan_builder.h"

#include <map>
#include <set>

namespace dcy::sql {

namespace {

using mal::Arg;
using mal::Datum;

Arg V(const std::string& var) { return Arg::Var(var); }
Arg L(int64_t v) { return Arg::Lit(Datum(v)); }
Arg L(double v) { return Arg::Lit(Datum(v)); }
Arg L(std::string v) { return Arg::Lit(Datum(std::move(v))); }
Arg LOid(bat::Oid v) { return Arg::Lit(Datum(mal::OidLit{v})); }

Arg LValue(const bat::Value& v) {
  switch (v.type) {
    case bat::ValType::kStr: return L(v.s);
    case bat::ValType::kDbl: return L(v.d);
    case bat::ValType::kOid: return LOid(static_cast<bat::Oid>(v.i));
    default: return L(v.i);
  }
}

const char* ThetaOpName(BinOp op) {
  switch (op) {
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    default: return "==";
  }
}

/// Mirrors a comparison for operand swap: a op b == b op' a.
BinOp FlipComparison(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;  // = and <> are symmetric
  }
}

const char* ArithFnName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
    default: return "add";
  }
}

const char* DeclTypeName(bat::ValType t) {
  switch (t) {
    case bat::ValType::kOid: return "oid";
    case bat::ValType::kInt: return "int";
    case bat::ValType::kLng: return "bigint";
    case bat::ValType::kDbl: return "double";
    case bat::ValType::kStr: return "varchar";
    case bat::ValType::kDate: return "date";
  }
  return "bigint";
}

/// One top-level AND conjunct of the WHERE clause.
struct Conjunct {
  const Expr* expr = nullptr;
  std::set<int> tables;      ///< FROM indices referenced
  bool equi_edge = false;    ///< plain colref = colref across two tables
  const Expr* left = nullptr;   // equi edge endpoints
  const Expr* right = nullptr;
  bool consumed = false;     ///< used as a join edge (not re-applied)
};

struct PlanBuilder {
  const AnalyzedQuery& q;
  const Schema& schema;
  const std::string& text;
  ParseError* err;

  mal::Program prog;
  int next_var = 0;
  /// (FROM index, column) -> variable holding the aligned [dense, value] BAT.
  std::map<std::pair<int, std::string>, std::string> cur;

  Status Fail(const Expr& e, std::string message) {
    return ParseFail(err, ParseError::At(text, e.offset, e.ToString(), std::move(message)));
  }

  // ---- emission helpers -----------------------------------------------------

  std::string NewVar() { return "X" + std::to_string(++next_var); }

  std::string Emit(const char* module, const char* fn, std::vector<Arg> args) {
    mal::Instruction ins;
    ins.ret = NewVar();
    ins.module = module;
    ins.fn = fn;
    ins.args = std::move(args);
    prog.instructions.push_back(std::move(ins));
    return prog.instructions.back().ret;
  }

  void EmitVoid(const char* module, const char* fn, std::vector<Arg> args) {
    mal::Instruction ins;
    ins.module = module;
    ins.fn = fn;
    ins.args = std::move(args);
    prog.instructions.push_back(std::move(ins));
  }

  /// Any live column variable (anchor for constant columns). Requires a
  /// non-empty rowset, which binding guarantees.
  std::string Anchor() const { return cur.begin()->second; }

  /// reverse(markT(m, 0@0)) -> [dense, old position]; re-gathers every
  /// column of the FROM entries in `tables` through it.
  void GatherAfter(const std::string& m, const std::set<int>& tables) {
    const std::string marked = Emit("algebra", "markT", {V(m), LOid(0)});
    const std::string pos = Emit("bat", "reverse", {V(marked)});
    for (auto& [key, var] : cur) {
      if (tables.count(key.first) == 0) continue;
      var = Emit("algebra", "leftjoin", {V(pos), V(var)});
    }
  }

  // ---- scalar expressions ---------------------------------------------------

  /// Value expression over the current rowset -> aligned [dense, value] var.
  /// `anchor` anchors constant columns. Aggregates are rejected here (the
  /// grouped path computes them via EvalGroupedItem).
  Result<std::string> EvalScalar(const Expr& e, const std::string& anchor) {
    switch (e.kind) {
      case Expr::Kind::kColumnRef: {
        auto it = cur.find({e.table_index, e.column});
        if (it == cur.end()) {
          return Fail(e, "internal: unresolved column in planner");
        }
        return it->second;
      }
      case Expr::Kind::kLiteral:
        return Emit("algebra", "project", {V(anchor), LValue(e.literal)});
      case Expr::Kind::kBinary: {
        const bool l_lit = e.lhs->kind == Expr::Kind::kLiteral;
        const bool r_lit = e.rhs->kind == Expr::Kind::kLiteral;
        if (r_lit && !l_lit) {
          DCY_ASSIGN_OR_RETURN(std::string lv, EvalScalar(*e.lhs, anchor));
          return Emit("batcalc", ArithFnName(e.op), {V(lv), LValue(e.rhs->literal)});
        }
        // Constant-first (e.g. 1 - l_discount): materialize the constant as
        // an aligned column, then the BAT-BAT form.
        DCY_ASSIGN_OR_RETURN(std::string lv, EvalScalar(*e.lhs, anchor));
        DCY_ASSIGN_OR_RETURN(std::string rv, EvalScalar(*e.rhs, anchor));
        return Emit("batcalc", ArithFnName(e.op), {V(lv), V(rv)});
      }
      case Expr::Kind::kAggregate:
        return Fail(e, "internal: aggregate outside the grouped path");
    }
    return Status::FailedPrecondition("unreachable expression kind");
  }

  // ---- predicates -----------------------------------------------------------

  /// Predicate over the current rowset -> mirror BAT [q, q] of qualifying
  /// positions, in ascending row order. `anchor` must be a column aligned
  /// with the rows the predicate ranges over (it anchors constant columns).
  Result<std::string> EvalPredicate(const Expr& e, const std::string& anchor) {
    if (e.op == BinOp::kAnd) {
      DCY_ASSIGN_OR_RETURN(std::string l, EvalPredicate(*e.lhs, anchor));
      DCY_ASSIGN_OR_RETURN(std::string r, EvalPredicate(*e.rhs, anchor));
      // Position intersection; semijoin keeps l's ascending order.
      return Emit("algebra", "semijoin", {V(l), V(r)});
    }
    if (e.op == BinOp::kOr) {
      DCY_ASSIGN_OR_RETURN(std::string l, EvalPredicate(*e.lhs, anchor));
      DCY_ASSIGN_OR_RETURN(std::string r, EvalPredicate(*e.rhs, anchor));
      // Position union; mirror tails are the positions, so sorting by tail
      // restores ascending row order.
      const std::string u = Emit("algebra", "kunion", {V(l), V(r)});
      return Emit("algebra", "sort", {V(u)});
    }

    const Expr* lhs = e.lhs.get();
    const Expr* rhs = e.rhs.get();
    BinOp op = e.op;
    if (lhs->kind == Expr::Kind::kLiteral && rhs->kind != Expr::Kind::kLiteral) {
      std::swap(lhs, rhs);
      op = FlipComparison(op);
    }
    if (rhs->kind == Expr::Kind::kLiteral) {
      DCY_ASSIGN_OR_RETURN(std::string lv, EvalScalar(*lhs, anchor));
      const std::string sel =
          op == BinOp::kEq
              ? Emit("algebra", "select", {V(lv), LValue(rhs->literal)})
              : Emit("algebra", "thetaselect",
                     {V(lv), LValue(rhs->literal), L(std::string(ThetaOpName(op)))});
      return Emit("bat", "mirror", {V(sel)});
    }
    // Column/expression vs column/expression: compare the difference with 0.
    if (lhs->type == bat::ValType::kStr || rhs->type == bat::ValType::kStr) {
      return Fail(e, "string comparison between columns is not supported");
    }
    DCY_ASSIGN_OR_RETURN(std::string lv, EvalScalar(*lhs, anchor));
    DCY_ASSIGN_OR_RETURN(std::string rv, EvalScalar(*rhs, anchor));
    const std::string diff = Emit("batcalc", "sub", {V(lv), V(rv)});
    const std::string sel =
        op == BinOp::kEq
            ? Emit("algebra", "select", {V(diff), L(0.0)})
            : Emit("algebra", "thetaselect",
                   {V(diff), L(0.0), L(std::string(ThetaOpName(op)))});
    return Emit("bat", "mirror", {V(sel)});
  }

  /// Applies a filter conjunct: evaluate to positions, gather `tables`.
  Status ApplyFilter(const Expr& e, const std::set<int>& tables) {
    // Constants inside the predicate must align with the filtered rowset:
    // anchor on a column of one of the predicate's own tables.
    std::string anchor = Anchor();
    for (const auto& [key, var] : cur) {
      if (tables.count(key.first) > 0) {
        anchor = var;
        break;
      }
    }
    DCY_ASSIGN_OR_RETURN(std::string m, EvalPredicate(e, anchor));
    GatherAfter(m, tables);
    return Status::OK();
  }

  // ---- WHERE decomposition --------------------------------------------------

  void CollectTables(const Expr& e, std::set<int>* out) const {
    switch (e.kind) {
      case Expr::Kind::kColumnRef: out->insert(e.table_index); break;
      case Expr::Kind::kBinary:
        CollectTables(*e.lhs, out);
        CollectTables(*e.rhs, out);
        break;
      case Expr::Kind::kAggregate:
        if (e.arg != nullptr) CollectTables(*e.arg, out);
        break;
      case Expr::Kind::kLiteral: break;
    }
  }

  void SplitConjuncts(const Expr& e, std::vector<Conjunct>* out) const {
    if (e.kind == Expr::Kind::kBinary && e.op == BinOp::kAnd) {
      SplitConjuncts(*e.lhs, out);
      SplitConjuncts(*e.rhs, out);
      return;
    }
    Conjunct c;
    c.expr = &e;
    CollectTables(e, &c.tables);
    if (e.kind == Expr::Kind::kBinary && e.op == BinOp::kEq &&
        e.lhs->kind == Expr::Kind::kColumnRef && e.rhs->kind == Expr::Kind::kColumnRef &&
        e.lhs->table_index != e.rhs->table_index &&
        e.lhs->type != bat::ValType::kStr && e.rhs->type != bat::ValType::kStr) {
      c.equi_edge = true;
      c.left = e.lhs.get();
      c.right = e.rhs.get();
    }
    out->push_back(c);
  }

  // ---- column binding -------------------------------------------------------

  void CollectColumns(const Expr& e, std::set<std::pair<int, std::string>>* out) const {
    switch (e.kind) {
      case Expr::Kind::kColumnRef: out->insert({e.table_index, e.column}); break;
      case Expr::Kind::kBinary:
        CollectColumns(*e.lhs, out);
        CollectColumns(*e.rhs, out);
        break;
      case Expr::Kind::kAggregate:
        if (e.arg != nullptr) CollectColumns(*e.arg, out);
        break;
      case Expr::Kind::kLiteral: break;
    }
  }

  Status BindColumns() {
    std::set<std::pair<int, std::string>> used;
    for (const auto& item : q.stmt.items) CollectColumns(*item.expr, &used);
    if (q.stmt.where != nullptr) CollectColumns(*q.stmt.where, &used);
    for (const auto& g : q.stmt.group_by) CollectColumns(*g, &used);
    // Every FROM entry needs at least one bound column to carry its rowset
    // (e.g. `select count(*) from t`).
    for (size_t i = 0; i < q.stmt.from.size(); ++i) {
      bool any = false;
      for (const auto& [uti, ucol] : used) any = any || uti == static_cast<int>(i);
      if (!any) {
        const auto& cols = schema.TableColumns(q.stmt.from[i].table);
        if (cols.empty()) {
          return Status::InvalidArgument("table \"" + q.stmt.from[i].table +
                                         "\" has no columns");
        }
        used.insert({static_cast<int>(i), cols[0].name});
      }
    }
    for (const auto& [ti, col] : used) {
      cur[{ti, col}] = Emit("sql", "bind", {L(std::string("sys")), L(q.stmt.from[ti].table),
                                            L(col), L(int64_t{0})});
    }
    return Status::OK();
  }

  // ---- joins ----------------------------------------------------------------

  Status JoinTables(std::vector<Conjunct>& conjuncts) {
    std::set<int> joined{0};
    while (joined.size() < q.stmt.from.size()) {
      Conjunct* edge = nullptr;
      const Expr* inner = nullptr;  // endpoint already in the rowset
      const Expr* outer = nullptr;  // endpoint being joined in
      for (auto& c : conjuncts) {
        if (!c.equi_edge || c.consumed) continue;
        const bool l_in = joined.count(c.left->table_index) > 0;
        const bool r_in = joined.count(c.right->table_index) > 0;
        if (l_in && !r_in) {
          edge = &c;
          inner = c.left;
          outer = c.right;
          break;
        }
        if (r_in && !l_in) {
          edge = &c;
          inner = c.right;
          outer = c.left;
          break;
        }
      }
      if (edge == nullptr) {
        return ParseFail(
            err, ParseError::At(text, q.stmt.from[joined.size()].offset,
                                q.stmt.from[joined.size()].table,
                                "no join predicate connects this table (cross joins "
                                "are not supported)"));
      }
      edge->consumed = true;
      const std::string l = cur[{inner->table_index, inner->column}];
      const std::string r = cur[{outer->table_index, outer->column}];
      const std::string rrev = Emit("bat", "reverse", {V(r)});
      // [inner position, outer position] for every matching pair.
      const std::string j = Emit("algebra", "join", {V(l), V(rrev)});
      GatherAfter(j, joined);  // reverse(markT(j)) = [dense, inner position]
      const std::string outer_pos = Emit("algebra", "markH", {V(j), LOid(0)});
      for (auto& [key, var] : cur) {
        if (key.first != outer->table_index) continue;
        var = Emit("algebra", "leftjoin", {V(outer_pos), V(var)});
      }
      joined.insert(outer->table_index);
    }
    return Status::OK();
  }

  // ---- grouped output -------------------------------------------------------

  /// Select-list expression in a grouped query -> [dense gid, value] var.
  /// `g` = per-row group ids, `extents` = [gid, first row] (empty for the
  /// single-group case), `ngroups` = group count argument.
  Result<std::string> EvalGroupedItem(const Expr& e, const std::string& g,
                                      const std::string& extents, const Arg& ngroups,
                                      std::string* grouped_anchor) {
    switch (e.kind) {
      case Expr::Kind::kColumnRef: {
        // Analyzer guarantees this is a GROUP BY column; project the
        // per-group representative through the extents.
        const std::string v =
            Emit("algebra", "leftjoin", {V(extents), V(cur[{e.table_index, e.column}])});
        if (grouped_anchor->empty()) *grouped_anchor = v;
        return v;
      }
      case Expr::Kind::kLiteral: {
        if (grouped_anchor->empty()) {
          return Fail(e, "constant select item requires a grouped column or aggregate "
                         "earlier in the select list");
        }
        return Emit("algebra", "project", {V(*grouped_anchor), LValue(e.literal)});
      }
      case Expr::Kind::kAggregate: {
        std::string v;
        switch (e.agg) {
          case AggFn::kCount:
            v = Emit("aggr", "countPerGroup", {V(g), ngroups});
            break;
          case AggFn::kSum: {
            DCY_ASSIGN_OR_RETURN(std::string arg, EvalScalar(*e.arg, Anchor()));
            v = Emit("aggr", "sumPerGroup", {V(arg), V(g), ngroups});
            break;
          }
          case AggFn::kAvg: {
            DCY_ASSIGN_OR_RETURN(std::string arg, EvalScalar(*e.arg, Anchor()));
            const std::string s = Emit("aggr", "sumPerGroup", {V(arg), V(g), ngroups});
            const std::string c = Emit("aggr", "countPerGroup", {V(g), ngroups});
            v = Emit("batcalc", "div", {V(s), V(c)});
            break;
          }
          case AggFn::kMin:
          case AggFn::kMax: {
            DCY_ASSIGN_OR_RETURN(std::string arg, EvalScalar(*e.arg, Anchor()));
            v = Emit("aggr", e.agg == AggFn::kMin ? "minPerGroup" : "maxPerGroup",
                     {V(arg), V(g), ngroups});
            break;
          }
        }
        if (grouped_anchor->empty()) *grouped_anchor = v;
        return v;
      }
      case Expr::Kind::kBinary: {
        // Arithmetic over aggregates/group columns: the operands are
        // gid-aligned, so the same batcalc lowering applies.
        const bool r_lit = e.rhs->kind == Expr::Kind::kLiteral;
        const bool l_lit = e.lhs->kind == Expr::Kind::kLiteral;
        if (r_lit && !l_lit) {
          DCY_ASSIGN_OR_RETURN(
              std::string lv, EvalGroupedItem(*e.lhs, g, extents, ngroups, grouped_anchor));
          return Emit("batcalc", ArithFnName(e.op), {V(lv), LValue(e.rhs->literal)});
        }
        DCY_ASSIGN_OR_RETURN(std::string lv,
                             EvalGroupedItem(*e.lhs, g, extents, ngroups, grouped_anchor));
        DCY_ASSIGN_OR_RETURN(std::string rv,
                             EvalGroupedItem(*e.rhs, g, extents, ngroups, grouped_anchor));
        return Emit("batcalc", ArithFnName(e.op), {V(lv), V(rv)});
      }
    }
    return Status::FailedPrecondition("unreachable expression kind");
  }

  // ---- top level ------------------------------------------------------------

  Result<mal::Program> Build() {
    prog.name = "user.sql";
    DCY_RETURN_NOT_OK(BindColumns());

    std::vector<Conjunct> conjuncts;
    if (q.stmt.where != nullptr) SplitConjuncts(*q.stmt.where, &conjuncts);

    // Single-table filters push below the joins (valid for inner joins).
    for (auto& c : conjuncts) {
      if (c.equi_edge || c.tables.size() > 1) continue;
      const std::set<int> scope =
          c.tables.empty() ? std::set<int>{0} : c.tables;  // literal-only: any table
      DCY_RETURN_NOT_OK(ApplyFilter(*c.expr, scope));
      c.consumed = true;
    }

    DCY_RETURN_NOT_OK(JoinTables(conjuncts));

    // Residual predicates (multi-table conjuncts and equi predicates between
    // already-joined tables, e.g. the second leg of a join cycle).
    std::set<int> all;
    for (size_t i = 0; i < q.stmt.from.size(); ++i) all.insert(static_cast<int>(i));
    for (auto& c : conjuncts) {
      if (c.consumed) continue;
      DCY_RETURN_NOT_OK(ApplyFilter(*c.expr, all));
      c.consumed = true;
    }

    // Output columns, one var per select item.
    std::vector<std::string> out(q.stmt.items.size());
    if (q.grouped) {
      std::string g;
      Arg ngroups = L(int64_t{1});
      std::string extents;
      if (q.stmt.group_by.empty()) {
        // Single-group aggregation: constant group id 0 for every row.
        g = Emit("algebra", "project", {V(Anchor()), L(int64_t{0})});
      } else {
        g = Emit("group", "id",
                 {V(cur[{q.stmt.group_by[0]->table_index, q.stmt.group_by[0]->column}])});
        for (size_t k = 1; k < q.stmt.group_by.size(); ++k) {
          g = Emit("group", "refine",
                   {V(cur[{q.stmt.group_by[k]->table_index, q.stmt.group_by[k]->column}]),
                    V(g)});
        }
        extents = Emit("group", "extents", {V(g)});
        ngroups = V(Emit("aggr", "count", {V(extents)}));
      }
      std::string grouped_anchor;
      for (size_t i = 0; i < q.stmt.items.size(); ++i) {
        DCY_ASSIGN_OR_RETURN(
            out[i], EvalGroupedItem(*q.stmt.items[i].expr, g, extents, ngroups,
                                    &grouped_anchor));
      }
    } else {
      for (size_t i = 0; i < q.stmt.items.size(); ++i) {
        DCY_ASSIGN_OR_RETURN(out[i], EvalScalar(*q.stmt.items[i].expr, Anchor()));
      }
    }

    // ORDER BY: stable sort per key, applied last key first.
    for (auto it = q.stmt.order_by.rbegin(); it != q.stmt.order_by.rend(); ++it) {
      std::string key = out[it->item_index];
      if (it->descending) {
        key = Emit("batcalc", "mul", {V(key), L(int64_t{-1})});
      }
      const std::string sorted = Emit("algebra", "sort", {V(key)});
      const std::string marked = Emit("algebra", "markT", {V(sorted), LOid(0)});
      const std::string pos = Emit("bat", "reverse", {V(marked)});
      for (auto& o : out) o = Emit("algebra", "leftjoin", {V(pos), V(o)});
    }

    if (q.stmt.limit.has_value()) {
      for (auto& o : out) {
        o = Emit("algebra", "slice", {V(o), L(int64_t{0}), L(*q.stmt.limit)});
      }
    }

    // Export: resultSet + one rsCol per select item.
    const std::string rs = Emit(
        "sql", "resultSet",
        {L(static_cast<int64_t>(out.size())), L(int64_t{0}), V(out[0])});
    for (size_t i = 0; i < out.size(); ++i) {
      EmitVoid("sql", "rsCol",
               {V(rs), L(std::string("sys")), L(q.output_names[i]),
                L(std::string(DeclTypeName(q.output_types[i]))), L(int64_t{0}),
                L(int64_t{0}), V(out[i])});
    }
    const std::string stream = Emit("io", "stdout", {});
    EmitVoid("sql", "exportResult", {V(stream), V(rs)});
    return std::move(prog);
  }
};

}  // namespace

Result<mal::Program> BuildPlan(const AnalyzedQuery& q, const Schema& schema,
                               const std::string& text, ParseError* error) {
  PlanBuilder b{q, schema, text, error, {}, 0, {}};
  return b.Build();
}

Result<mal::Program> BuildInsertPlan(const AnalyzedInsert& ins) {
  mal::Program prog;
  prog.name = "user.sql";
  int next_var = 0;
  // sql.wcommit("sys", table, nrows, token...): the tokens make every
  // wappend a dataflow predecessor of the commit.
  std::vector<Arg> commit_args{L(std::string("sys")), L(ins.table), L(ins.rows)};
  for (size_t c = 0; c < ins.columns.size(); ++c) {
    mal::Instruction app;
    app.ret = "X" + std::to_string(++next_var);
    app.module = "sql";
    app.fn = "wappend";
    app.args = {L(std::string("sys")), L(ins.table), L(ins.columns[c].name)};
    for (const auto& v : ins.values[c]) app.args.push_back(LValue(v));
    commit_args.push_back(V(app.ret));
    prog.instructions.push_back(std::move(app));
  }
  mal::Instruction commit;
  commit.ret = "X" + std::to_string(++next_var);
  commit.module = "sql";
  commit.fn = "wcommit";
  commit.args = std::move(commit_args);
  prog.instructions.push_back(std::move(commit));
  return prog;
}

Result<mal::Program> BuildDeletePlan(AnalyzedDelete del, const Schema& schema,
                                     const std::string& text, ParseError* error) {
  // Reuse the SELECT machinery over a single-table shell: BindColumns pulls
  // in every predicate column (or the table's first column when there is no
  // WHERE), and EvalPredicate yields the mirror of qualifying positions.
  AnalyzedQuery q;
  TableRef ref;
  ref.table = del.stmt.table;
  ref.alias = del.stmt.alias.empty() ? del.stmt.table : del.stmt.alias;
  ref.offset = del.stmt.table_offset;
  q.stmt.from.push_back(std::move(ref));
  q.stmt.where = std::move(del.stmt.where);

  PlanBuilder b{q, schema, text, error, {}, 0, {}};
  b.prog.name = "user.sql";
  DCY_RETURN_NOT_OK(b.BindColumns());

  std::string positions;
  if (q.stmt.where != nullptr) {
    DCY_ASSIGN_OR_RETURN(positions, b.EvalPredicate(*q.stmt.where, b.Anchor()));
  } else {
    // DELETE without WHERE: every current position qualifies.
    positions = b.Emit("bat", "mirror", {V(b.Anchor())});
  }
  b.Emit("sql", "wdelete", {L(std::string("sys")), L(del.stmt.table), V(positions)});
  return std::move(b.prog);
}

}  // namespace dcy::sql
