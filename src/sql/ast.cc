#include "sql/ast.h"

namespace dcy::sql {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

bool IsComparison(BinOp op) { return op >= BinOp::kEq && op <= BinOp::kGe; }

bool IsArithmetic(BinOp op) { return op >= BinOp::kAdd && op <= BinOp::kDiv; }

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "sum";
    case AggFn::kCount: return "count";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinOpName(op) + " " + rhs->ToString() + ")";
    case Kind::kAggregate:
      return std::string(AggFnName(agg)) + "(" + (arg ? arg->ToString() : "*") + ")";
  }
  return "?";
}

ExprPtr MakeColumnRef(size_t offset, std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->offset = offset;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeLiteral(size_t offset, bat::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->offset = offset;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeBinary(size_t offset, BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->offset = offset;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeAggregate(size_t offset, AggFn fn, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kAggregate;
  e->offset = offset;
  e->agg = fn;
  e->arg = std::move(arg);
  return e;
}

}  // namespace dcy::sql
