// Recursive-descent SQL parser over the lexer's token stream.
//
// Grammar (keywords case-insensitive):
//
//   statement   := select_stmt | insert_stmt | delete_stmt
//   select_stmt := SELECT item (',' item)* FROM table (',' table)*
//                  [WHERE expr] [GROUP BY column_ref (',' column_ref)*]
//                  [ORDER BY order (',' order)*] [LIMIT int] [';']
//   insert_stmt := INSERT INTO ident ['(' ident (',' ident)* ')']
//                  VALUES row (',' row)* [';']
//   row         := '(' expr (',' expr)* ')'
//   delete_stmt := DELETE FROM ident [ident] [WHERE expr] [';']
//   item        := expr [[AS] ident]
//   table       := ident [[AS] ident]
//   order       := ident [ASC | DESC]
//   expr        := or-chain of AND-chains of comparisons over +,-,*,/ terms
//   primary     := literal | DATE 'YYYY-MM-DD' | [ident '.'] ident
//                | agg '(' expr ')' | COUNT '(' '*' ')' | '(' expr ')'
//
// Date literals lower to int64 yyyymmdd (the encoding the workload's date
// columns use), so date comparisons are plain integer comparisons.
#pragma once

#include "common/parse_error.h"
#include "common/status.h"
#include "sql/ast.h"

namespace dcy::sql {

/// Parses one SELECT statement; trailing input after the statement (other
/// than a final ';') is an error. On failure the Status renders the
/// diagnostic and `*error` (when non-null) receives the structured form.
Result<SelectStmt> ParseSelect(const std::string& text, ParseError* error = nullptr);

/// Parses one statement of any kind (SELECT, INSERT, DELETE); same error
/// contract as ParseSelect.
Result<Statement> ParseStatement(const std::string& text, ParseError* error = nullptr);

}  // namespace dcy::sql
