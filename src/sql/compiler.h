// Front-end entry point: SQL text -> MAL program, via lexer -> parser ->
// analyzer -> plan builder. The produced program feeds the existing
// PreparedQuery / plan-cache / admission path exactly like hand-written MAL.
#pragma once

#include "common/parse_error.h"
#include "common/status.h"
#include "mal/program.h"
#include "sql/schema.h"

namespace dcy::sql {

/// Compiles one statement (SELECT, INSERT, or DELETE) against `schema`. On
/// failure the Status message renders the caret diagnostic; `error`
/// (optional) receives the structured ParseError.
Result<mal::Program> Compile(const std::string& sql, const Schema& schema,
                             ParseError* error = nullptr);

/// Language auto-detection heuristic: true when the first word of `text`
/// (after whitespace and `--`/`#` comment lines) is SELECT, INSERT, or
/// DELETE, case-insensitive. MAL programs start with `function` or a
/// `X := module.fn(...)` call, so this never misfires on them.
bool LooksLikeSql(const std::string& text);

}  // namespace dcy::sql
