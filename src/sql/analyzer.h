// Semantic analysis: binds the parsed AST to a Schema. Resolves table
// aliases and column references (annotating each Expr with its FROM-entry
// index and value type), type-checks arithmetic and comparisons, validates
// aggregate usage against GROUP BY, and resolves ORDER BY keys to
// select-list items. Errors carry the source offset of the offending
// token so callers get caret diagnostics.
#pragma once

#include "common/parse_error.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/schema.h"

namespace dcy::sql {

struct AnalyzedQuery {
  SelectStmt stmt;  ///< annotated in place by the analyzer

  /// True when the query aggregates (explicit GROUP BY, or an aggregate in
  /// the select list — the single-group case).
  bool grouped = false;

  /// Per select item: output column name (alias, column name, or the
  /// rendered expression) and value type.
  std::vector<std::string> output_names;
  std::vector<bat::ValType> output_types;
};

/// Consumes `stmt` and returns the annotated query. `text` is the original
/// SQL (for diagnostics); `error` optionally receives the structured
/// ParseError for semantic failures.
Result<AnalyzedQuery> Analyze(SelectStmt stmt, const Schema& schema,
                              const std::string& text, ParseError* error = nullptr);

}  // namespace dcy::sql
