// Semantic analysis: binds the parsed AST to a Schema. Resolves table
// aliases and column references (annotating each Expr with its FROM-entry
// index and value type), type-checks arithmetic and comparisons, validates
// aggregate usage against GROUP BY, and resolves ORDER BY keys to
// select-list items. Errors carry the source offset of the offending
// token so callers get caret diagnostics.
#pragma once

#include "common/parse_error.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/schema.h"

namespace dcy::sql {

struct AnalyzedQuery {
  SelectStmt stmt;  ///< annotated in place by the analyzer

  /// True when the query aggregates (explicit GROUP BY, or an aggregate in
  /// the select list — the single-group case).
  bool grouped = false;

  /// Per select item: output column name (alias, column name, or the
  /// rendered expression) and value type.
  std::vector<std::string> output_names;
  std::vector<bat::ValType> output_types;
};

/// Consumes `stmt` and returns the annotated query. `text` is the original
/// SQL (for diagnostics); `error` optionally receives the structured
/// ParseError for semantic failures.
Result<AnalyzedQuery> Analyze(SelectStmt stmt, const Schema& schema,
                              const std::string& text, ParseError* error = nullptr);

/// A validated INSERT: values transposed per column, coerced to the column
/// types, covering every table column (ISSUE-9 write path).
struct AnalyzedInsert {
  std::string table;
  /// Every table column, in schema registration order.
  std::vector<Schema::Column> columns;
  /// Aligned with `columns`: one literal per row, coerced to the column type.
  std::vector<std::vector<bat::Value>> values;
  int64_t rows = 0;
};

/// Validates an INSERT against the schema: the table exists, an explicit
/// column list covers every table column exactly once, rows are rectangular,
/// and every value is a literal of (or coercible to) the column type.
Result<AnalyzedInsert> AnalyzeInsert(InsertStmt stmt, const Schema& schema,
                                     const std::string& text,
                                     ParseError* error = nullptr);

/// A validated DELETE: the WHERE tree is bound to the target table.
struct AnalyzedDelete {
  DeleteStmt stmt;  ///< annotated in place by the analyzer
};

/// Validates a DELETE: the table exists and the WHERE predicate (if any)
/// type-checks against it (aggregates are rejected, as in SELECT's WHERE).
Result<AnalyzedDelete> AnalyzeDelete(DeleteStmt stmt, const Schema& schema,
                                     const std::string& text,
                                     ParseError* error = nullptr);

}  // namespace dcy::sql
