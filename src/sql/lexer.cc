#include "sql/lexer.h"

#include <cctype>
#include <cstring>

namespace dcy::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

bool Token::IsWord(const char* w) const {
  if (kind != Kind::kIdent) return false;
  const char* p = text.c_str();
  for (; *p != '\0' && *w != '\0'; ++p, ++w) {
    if (std::tolower(static_cast<unsigned char>(*p)) !=
        std::tolower(static_cast<unsigned char>(*w))) {
      return false;
    }
  }
  return *p == '\0' && *w == '\0';
}

Result<std::vector<Token>> Lex(const std::string& text, ParseError* error) {
  std::vector<Token> out;
  size_t pos = 0;
  const auto push = [&out](Token::Kind kind, std::string spelling, size_t at) -> Token& {
    Token t;
    t.kind = kind;
    t.text = std::move(spelling);
    t.offset = at;
    out.push_back(std::move(t));
    return out.back();
  };

  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '-' && pos + 1 < text.size() && text[pos + 1] == '-') {
      while (pos < text.size() && text[pos] != '\n') ++pos;
      continue;
    }
    const size_t start = pos;
    if (IsIdentStart(c)) {
      while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
      push(Token::Kind::kIdent, text.substr(start, pos - start), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      bool is_float = false;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.')) {
        if (text[pos] == '.') is_float = true;
        ++pos;
      }
      const std::string num = text.substr(start, pos - start);
      Token& t = push(is_float ? Token::Kind::kFloat : Token::Kind::kInt, num, start);
      try {
        if (is_float) {
          t.d = std::stod(num);
        } else {
          t.i = std::stoll(num);
        }
      } catch (const std::exception&) {
        return ParseFail(error, ParseError::At(text, start, num, "malformed number"));
      }
      continue;
    }
    if (c == '\'') {
      ++pos;
      std::string s;
      while (pos < text.size()) {
        if (text[pos] == '\'') {
          if (pos + 1 < text.size() && text[pos + 1] == '\'') {
            s += '\'';  // '' escapes a quote
            pos += 2;
            continue;
          }
          break;
        }
        s += text[pos++];
      }
      if (pos >= text.size()) {
        return ParseFail(error, ParseError::At(text, start, "'", "unterminated string"));
      }
      ++pos;  // closing quote
      push(Token::Kind::kString, std::move(s), start);
      continue;
    }
    // Two-char operators first.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (text.compare(pos, 2, op) == 0) {
        push(Token::Kind::kSymbol, op, start);
        pos += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::strchr("(),.*+-/=<>;", c) != nullptr) {
      push(Token::Kind::kSymbol, std::string(1, c), start);
      ++pos;
      continue;
    }
    return ParseFail(error, ParseError::At(text, start, std::string(1, c),
                                           "unexpected character in SQL"));
  }
  push(Token::Kind::kEnd, "", text.size());
  return out;
}

}  // namespace dcy::sql
