// Reproduces paper Figure 10 (§6.3 "Pulsating Rings"): maximum request
// latency per BAT id for rings of 5, 10, 15 and 20 nodes, with the total
// workload held constant (the §5.3 Gaussian scenario).
//
// Paper finding: the *largest* ring shows the lowest maximum request
// latency, because its extra capacity keeps the in-vogue BATs hot for the
// whole run (cf. Figure 11), removing reload round-trips from the path.
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("fig10_request_latency", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 1.0);
  const double total_rate = flags.GetDouble("total_rate", 800.0);
  const int bucket = static_cast<int>(flags.GetInt("bucket", 25));

  std::printf("# Figure 10 -- max request latency per BAT, 5/10/15/20 nodes "
              "(constant total load %.0f q/s * scale, scale=%.2f)\n", total_rate, scale);

  std::map<uint32_t, ExperimentResult> results;
  for (uint32_t nodes : {5u, 10u, 15u, 20u}) {
    GaussianExperimentOptions opts;
    opts.num_nodes = nodes;
    opts.total_rate = total_rate;  // constant system-wide workload
    opts.scale = scale;
    results[nodes] = bench::RunExperimentCase(
        harness, "nodes_" + std::to_string(nodes),
        {{"nodes", std::to_string(nodes)},
         {"total_rate", bench::Fmt("%.0f", total_rate)},
         {"scale", bench::Fmt("%.2f", scale)}},
        [&] { return RunGaussianExperiment(opts); },
        [](const ExperimentResult& r, bench::RepResult* rep) {
          rep->metrics["mean_rotation_s"] = r.collector->rotation_sec().mean();
        });
  }

  std::printf("\n## Fig 10: max data-access latency per BAT (blocked-pin wait, seconds), bucketed by %d ids (TSV)\n",
              bucket);
  std::printf("bat_id\t5_nodes\t10_nodes\t15_nodes\t20_nodes\n");
  const size_t num_bats = results.at(5).collector->max_pin_wait_sec().size();
  for (size_t b0 = 0; b0 < num_bats; b0 += bucket) {
    std::printf("%zu", b0);
    for (uint32_t nodes : {5u, 10u, 15u, 20u}) {
      const auto& lat = results.at(nodes).collector->max_pin_wait_sec();
      double mx = 0;
      for (size_t b = b0; b < std::min(num_bats, b0 + bucket); ++b) {
        mx = std::max(mx, lat[b]);
      }
      std::printf("\t%.2f", mx);
    }
    std::printf("\n");
  }

  std::printf("\n## Per-region max data-access latency (in-vogue = within 1.5 sigma)\n");
  std::printf("nodes\tin_vogue_max_s\tstandard_max_s\tunpopular_max_s\n");
  for (auto& [nodes, r] : results) {
    const auto& lat = r.collector->max_pin_wait_sec();
    const double mean = 500 * scale, sigma = 50 * scale;
    double iv = 0, st = 0, up = 0;
    for (size_t b = 0; b < lat.size(); ++b) {
      const double d = std::abs(static_cast<double>(b) - mean) / sigma;
      if (d <= 1.5) iv = std::max(iv, lat[b]);
      else if (d <= 3.0) st = std::max(st, lat[b]);
      else up = std::max(up, lat[b]);
    }
    std::printf("%u\t%.2f\t%.2f\t%.2f\n", nodes, iv, st, up);
  }

  std::printf("\n## Summary: overall max / mean-of-max request latency + rotation\n");
  std::printf("nodes\tmax_lat_s\tmean_max_lat_s\tmean_rotation_s\tfinished\n");
  for (auto& [nodes, r] : results) {
    const auto& lat = r.collector->max_pin_wait_sec();
    double mx = 0, sum = 0;
    uint32_t cnt = 0;
    for (double v : lat) {
      if (v <= 0) continue;
      mx = std::max(mx, v);
      sum += v;
      ++cnt;
    }
    std::printf("%u\t%.2f\t%.2f\t%.3f\t%llu%s\n", nodes, mx, cnt ? sum / cnt : 0.0,
                r.collector->rotation_sec().mean(),
                static_cast<unsigned long long>(r.finished),
                r.drained ? "" : "\t[NOT DRAINED]");
  }
  return harness.Finish();
}
