// A4: Data Cyclotron vs the architectures it displaces, on the same
// workload and dataset:
//   * sticky-data / function-shipping (static partitioning, §1),
//   * a DataCycle-style central broadcast pump (§7).
//
// Expected shape: on a skewed (Gaussian) workload the sticky baseline
// suffers hot-owner queueing and the broadcast pump pays the full-database
// cycle time, while the Data Cyclotron circulates only the hot set.
#include <cstdio>
#include <string>

#include "baseline/baselines.h"
#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;  // NOLINT

namespace {

void PrintRow(const char* name, uint64_t finished, double last_finish_s, double mean_s,
              double p95_s) {
  std::printf("%-18s %10llu %12.1f %12.2f %10.2f\n", name,
              static_cast<unsigned long long>(finished), last_finish_s, mean_s, p95_s);
}

bench::RepResult RepFromBaseline(const baseline::BaselineResult& r) {
  bench::RepResult rep;
  rep.items = static_cast<double>(r.finished);
  rep.metrics["finished"] = static_cast<double>(r.finished);
  rep.metrics["last_finish_s"] = ToSeconds(r.last_finish);
  rep.metrics["mean_life_s"] = r.lifetime_sec.mean();
  rep.metrics["p95_life_s"] = r.p95_lifetime_sec;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("baseline_compare", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.2);
  const SimTime deadline = FromSeconds(flags.GetDouble("deadline_s", 400));
  const std::string scale_s = bench::Fmt("%.2f", scale);

  std::printf("# A4 -- Data Cyclotron vs sticky-data vs broadcast pump\n");
  std::printf("# Gaussian workload (§5.3 shape), scale=%.2f\n\n", scale);
  std::printf("%-18s %10s %12s %12s %10s\n", "architecture", "finished", "last_fin_s",
              "mean_life_s", "p95_s");

  // --- Data Cyclotron (the §5.3 runner). -----------------------------------
  simdc::GaussianExperimentOptions dc_opts;
  dc_opts.scale = scale;
  simdc::ExperimentResult dc = bench::RunExperimentCase(
      harness, "data_cyclotron", {{"scale", scale_s}, {"architecture", "data-cyclotron"}},
      [&] { return simdc::RunGaussianExperiment(dc_opts); });
  {
    Histogram h(0.0, 400.0, 4000);
    for (double life : dc.collector->lifetimes_sec()) h.Add(life);
    PrintRow("data-cyclotron", dc.finished, ToSeconds(dc.last_finish),
             dc.collector->lifetime_stat().mean(), h.Percentile(95));
  }

  // --- Baselines on the identical dataset + workload. ------------------------
  Rng data_rng(dc_opts.data_seed);
  const uint32_t num_bats = static_cast<uint32_t>(dc_opts.num_bats * scale);
  workload::Dataset dataset = workload::MakeUniformDataset(
      num_bats, dc_opts.min_bat, dc_opts.max_bat, dc_opts.num_nodes, &data_rng);
  workload::GaussianWorkloadOptions wopts;
  wopts.rate_per_node = dc_opts.rate_per_node * scale;
  wopts.duration = dc_opts.duration;
  wopts.mean = dc_opts.mean * scale;
  wopts.stddev = dc_opts.stddev * scale;
  wopts.seed = dc_opts.workload_seed;
  auto workloads = workload::GenerateGaussianWorkload(wopts, dataset, dc_opts.num_nodes);

  baseline::LinkModel link;
  link.bandwidth_bytes_per_sec = GbpsToBytesPerSec(10.0 * scale);
  link.disk_bytes_per_sec = 400e6 * scale;

  baseline::BaselineResult sticky;
  harness.Run("sticky_data", {{"scale", scale_s}, {"architecture", "sticky-data"}}, [&] {
    sticky = baseline::RunStickyBaseline(dataset, workloads, link, deadline);
    return RepFromBaseline(sticky);
  });
  PrintRow(sticky.name.c_str(), sticky.finished, ToSeconds(sticky.last_finish),
           sticky.lifetime_sec.mean(), sticky.p95_lifetime_sec);

  baseline::BaselineResult pump;
  harness.Run("broadcast_pump", {{"scale", scale_s}, {"architecture", "broadcast-pump"}},
              [&] {
                pump = baseline::RunBroadcastBaseline(dataset, workloads, link, deadline);
                return RepFromBaseline(pump);
              });
  PrintRow(pump.name.c_str(), pump.finished, ToSeconds(pump.last_finish),
           pump.lifetime_sec.mean(), pump.p95_lifetime_sec);
  return harness.Finish();
}
