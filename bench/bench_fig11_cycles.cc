// Reproduces paper Figure 11 (§6.3): maximum number of cycles per BAT for
// rings of 5, 10, 15 and 20 nodes under the constant Gaussian workload.
//
// Paper finding: with 20 nodes the in-vogue BATs live ~the whole run
// (~38 cycles); with 5 nodes capacity is short, the in-vogue BATs are
// cooled down frequently and reach only small cycle counts. Also reported:
// each 5 added nodes grew the BAT cycle duration by ~75%.
#include <cstdio>
#include <map>
#include <string>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("fig11_cycles", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 1.0);
  const double total_rate = flags.GetDouble("total_rate", 800.0);
  const int bucket = static_cast<int>(flags.GetInt("bucket", 25));

  std::printf("# Figure 11 -- max cycles per BAT, 5/10/15/20 nodes (scale=%.2f)\n", scale);

  std::map<uint32_t, ExperimentResult> results;
  for (uint32_t nodes : {5u, 10u, 15u, 20u}) {
    GaussianExperimentOptions opts;
    opts.num_nodes = nodes;
    opts.total_rate = total_rate;
    opts.scale = scale;
    results[nodes] = bench::RunExperimentCase(
        harness, "nodes_" + std::to_string(nodes),
        {{"nodes", std::to_string(nodes)},
         {"total_rate", bench::Fmt("%.0f", total_rate)},
         {"scale", bench::Fmt("%.2f", scale)}},
        [&] { return RunGaussianExperiment(opts); },
        [](const ExperimentResult& r, bench::RepResult* rep) {
          uint32_t peak = 0;
          for (uint32_t c : r.collector->max_cycles()) peak = std::max(peak, c);
          rep->metrics["peak_cycles"] = peak;
          rep->metrics["mean_rotation_s"] = r.collector->rotation_sec().mean();
        });
  }

  std::printf("\n## Fig 11: max cycles per BAT, bucketed by %d ids (TSV)\n", bucket);
  std::printf("bat_id\t5_nodes\t10_nodes\t15_nodes\t20_nodes\n");
  const size_t num_bats = results.at(5).collector->max_cycles().size();
  for (size_t b0 = 0; b0 < num_bats; b0 += bucket) {
    std::printf("%zu", b0);
    for (uint32_t nodes : {5u, 10u, 15u, 20u}) {
      const auto& cyc = results.at(nodes).collector->max_cycles();
      uint32_t mx = 0;
      for (size_t b = b0; b < std::min(num_bats, b0 + bucket); ++b) {
        mx = std::max(mx, cyc[b]);
      }
      std::printf("\t%u", mx);
    }
    std::printf("\n");
  }

  std::printf("\n## Summary: peak cycles and rotation time growth\n");
  std::printf("nodes\tpeak_cycles\tmean_rotation_s\trotation_growth\n");
  double prev_rot = 0;
  for (auto& [nodes, r] : results) {
    uint32_t peak = 0;
    for (uint32_t c : r.collector->max_cycles()) peak = std::max(peak, c);
    const double rot = r.collector->rotation_sec().mean();
    std::printf("%u\t%u\t%.3f\t%s\n", nodes, peak, rot,
                prev_rot > 0 ? std::to_string(rot / prev_rot).c_str() : "-");
    prev_rot = rot;
  }
  return harness.Finish();
}
