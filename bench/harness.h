// Shared benchmark harness for the bench_* figure-reproduction binaries.
//
// Every bench registers named cases; the harness runs each case with a
// warmup/repeat loop, times repetitions on std::chrono::steady_clock,
// aggregates percentiles (p50/p95 over repetition wall times), prints a
// human-readable summary table, and — with --json [path] — emits all cases
// in the stable BENCH_*.json schema the perf-trajectory tooling diffs
// run-over-run:
//
//   {
//     "benchmark": "fig6_loit",
//     "schema": "dcy-bench-v1",
//     "repeats": 3, "warmup": 1,
//     "cases": [
//       {"name": "...", "params": {"loit": "0.5"}, "repeats": 3,
//        "p50_ns": 1.2e9, "p95_ns": 1.3e9, "mean_ns": ..., "min_ns": ...,
//        "max_ns": ..., "throughput": 830.5, "metrics": {"finished": 996}}
//     ]
//   }
//
// Harness flags (accepted as --key=value or --key value):
//   --repeat=N   measured repetitions per case (bench picks the default)
//   --warmup=N   untimed warmup repetitions per case
//   --json[=P]   write the JSON report to P (default BENCH_<name>.json)
//   --quiet      suppress the per-case summary table
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dcy::bench {

/// \brief What one measured repetition reports back to the harness.
struct RepResult {
  /// Work items completed this repetition (queries, messages, tuples...);
  /// drives the aggregate throughput (items / wall-second).
  double items = 0.0;
  /// Bench-specific counters, averaged over repetitions into the case
  /// metrics (deterministic sims report the same value each rep).
  std::map<std::string, double> metrics;
};

/// \brief Aggregated result of one case after all repetitions.
struct CaseResult {
  std::string name;
  std::map<std::string, std::string> params;
  int warmup = 0;
  int repeats = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double mean_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  double total_items = 0.0;
  /// items per wall-second across all measured repetitions.
  double throughput = 0.0;
  std::map<std::string, double> metrics;
};

/// \brief Exact percentile (linear interpolation between order statistics)
/// over a small sample, p in [0,100]. Complements Histogram::Percentile in
/// common/stats.h, which is bucketed and meant for thousands of samples.
double ExactPercentile(std::vector<double> samples, double p);

class Harness {
 public:
  /// `name` keys the JSON report (and the BENCH_<name>.json default path).
  /// Reads --repeat/--warmup/--json/--quiet from argv; other flags are left
  /// for the bench's own dcy::Flags to interpret.
  Harness(std::string name, int argc, char** argv, int default_repeats = 3,
          int default_warmup = 1);

  int repeats() const { return repeats_; }
  int warmup() const { return warmup_; }
  bool quiet() const { return quiet_; }
  const std::string& json_path() const { return json_path_; }

  /// Runs fn `warmup()` untimed + `repeats()` timed times and records the
  /// aggregate. Returns a copy of the recorded case (the stored ones live in
  /// results()).
  CaseResult Run(const std::string& case_name,
                 const std::map<std::string, std::string>& params,
                 const std::function<RepResult()>& fn);

  const std::vector<CaseResult>& results() const { return cases_; }

  /// Writes the JSON report if --json was given. Returns the process exit
  /// code: 0 on success, 1 when the report could not be written.
  int Finish();

  /// Renders the report document for `cases` (see the schema above).
  static std::string ToJson(const std::string& bench_name, int repeats, int warmup,
                            const std::vector<CaseResult>& cases);

 private:
  std::string name_;
  std::string json_path_;  // empty = no JSON output
  int repeats_;
  int warmup_;
  bool quiet_ = false;
  bool header_printed_ = false;
  std::vector<CaseResult> cases_;
};

// ---------------------------------------------------------------------------
// Minimal JSON value + parser, enough to round-trip the report schema in
// tests and to diff BENCH_*.json files run-over-run. Not a general parser:
// no \uXXXX escapes, numbers via strtod.

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  double number() const { return number_; }
  bool boolean() const { return bool_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; returns a null value for misses / non-objects.
  const JsonValue& operator[](const std::string& key) const;

  /// Parses one JSON document; returns a null value on malformed input and
  /// sets *ok (when provided) accordingly.
  static JsonValue Parse(const std::string& text, bool* ok = nullptr);

  static JsonValue MakeNull() { return JsonValue(); }

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escapes a string for embedding in a JSON document (adds the quotes).
std::string JsonQuote(const std::string& s);

/// Parses a report produced by Harness::ToJson back into CaseResults;
/// returns false on schema mismatch.
bool CasesFromJson(const JsonValue& doc, std::vector<CaseResult>* out);

}  // namespace dcy::bench
