// Ablation benches (A1-A3): what each design choice of the Data Cyclotron
// contributes, on the §5.1 / §5.2 scenarios.
//   A1  dynamic vs static LOIT under workload shifts (§5.2 scenario)
//   A2  request combining (Fig. 3 outcome 5) on vs off
//   A3  loadAll() fit-skip vs strict FIFO for pending loads
#include <cstdio>
#include <functional>
#include <string>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

namespace {

void PrintRow(const char* name, const ExperimentResult& r) {
  Histogram h(0.0, 400.0, 4000);
  for (double life : r.collector->lifetimes_sec()) h.Add(life);
  std::printf("%-28s %9llu %12.1f %12.2f %10.2f %10llu %10llu%s\n", name,
              static_cast<unsigned long long>(r.finished), ToSeconds(r.last_finish),
              r.collector->lifetime_stat().mean(), h.Percentile(95),
              static_cast<unsigned long long>(r.collector->total_loads()),
              static_cast<unsigned long long>(r.collector->total_dispatches()),
              r.drained ? "" : "  [NOT DRAINED]");
}

void Header() {
  std::printf("%-28s %9s %12s %12s %10s %10s %10s\n", "variant", "finished",
              "last_fin_s", "mean_life_s", "p95_s", "loads", "req_msgs");
}

// Runs one ablation variant as a harness case and prints its table row.
void RunVariant(bench::Harness& harness, const std::string& case_name,
                const std::map<std::string, std::string>& params, const char* row_name,
                const std::function<ExperimentResult()>& run) {
  PrintRow(row_name, bench::RunExperimentCase(harness, case_name, params, run));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("ablations", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.2);
  const std::string scale_s = bench::Fmt("%.2f", scale);

  std::printf("# A1 -- LOIT policy under the shifting workloads of §5.2 (scale=%.2f)\n",
              scale);
  Header();
  {
    SkewedExperimentOptions opts;
    opts.scale = scale;
    RunVariant(harness, "a1_loit_adaptive", {{"scale", scale_s}, {"policy", "adaptive"}},
               "adaptive {0.1,0.6,1.1}", [&] { return RunSkewedExperiment(opts); });
  }
  for (double loit : {0.1, 0.6, 1.1}) {
    SkewedExperimentOptions opts;
    opts.scale = scale;
    opts.adaptive_loit = false;
    opts.static_loit = loit;
    char name[64];
    std::snprintf(name, sizeof(name), "static %.1f", loit);
    RunVariant(harness, "a1_loit_static_" + bench::Fmt("%.1f", loit),
               {{"scale", scale_s}, {"policy", "static"}, {"loit", bench::Fmt("%.1f", loit)}},
               name, [&] { return RunSkewedExperiment(opts); });
  }

  std::printf("\n# A2 -- request combining (Fig. 3 outcome 5), §5.1 scenario\n");
  Header();
  for (bool combine : {true, false}) {
    UniformExperimentOptions opts;
    opts.scale = scale;
    opts.loit = 0.5;
    opts.node.combine_requests = combine;
    RunVariant(harness, combine ? "a2_combining_on" : "a2_combining_off",
               {{"scale", scale_s}, {"combine_requests", combine ? "true" : "false"}},
               combine ? "combining on (paper)" : "combining off",
               [&] { return RunUniformExperiment(opts); });
  }

  std::printf("\n# A3 -- pending-load policy (loadAll), §5.1 scenario, LOIT 0.3\n");
  Header();
  for (bool fit : {true, false}) {
    UniformExperimentOptions opts;
    opts.scale = scale;
    opts.loit = 0.3;
    opts.node.pending_fit_check = fit;
    RunVariant(harness, fit ? "a3_fit_skip" : "a3_strict_fifo",
               {{"scale", scale_s}, {"pending_fit_check", fit ? "true" : "false"}},
               fit ? "fit-skip (paper)" : "strict FIFO",
               [&] { return RunUniformExperiment(opts); });
  }
  return harness.Finish();
}
