// Micro-benchmarks of the simulation substrate (M2): event-queue throughput
// and simulated-link message rates — the quantities that bound how large a
// ring/workload the experiment harness can replay per wall-second.
#include <benchmark/benchmark.h>

#include "net/link.h"
#include "sim/simulator.h"

namespace {

using namespace dcy;  // NOLINT

void BM_EventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) sim.Schedule(i, [] {});
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventThroughput)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_SelfReschedulingEvent(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.Schedule(10, tick);
    };
    sim.Schedule(10, tick);
    sim.Run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SelfReschedulingEvent)->Arg(1 << 14);

void BM_LinkMessageRate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::SimplexLink::Options opts;
    opts.bandwidth_bytes_per_sec = 1.25e9;
    opts.propagation_delay = FromMicros(350);
    net::SimplexLink link(&sim, opts);
    int delivered = 0;
    for (int i = 0; i < n; ++i) link.Send(5'000'000, [&] { ++delivered; });
    sim.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinkMessageRate)->Arg(1 << 10)->Arg(1 << 13);

void BM_CancelHeavyQueue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) ids.push_back(sim.Schedule(i + 1, [] {}));
    for (int i = 0; i < n; i += 2) sim.Cancel(ids[static_cast<size_t>(i)]);
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CancelHeavyQueue)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
