// Micro-benchmarks of the simulation substrate (M2): event-queue throughput
// and simulated-link message rates — the quantities that bound how large a
// ring/workload the experiment harness can replay per wall-second.
#include <functional>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace {

using namespace dcy;  // NOLINT
using bench::RepResult;

std::map<std::string, std::string> Params(int n, int iters) {
  return {{"n", std::to_string(n)}, {"iters", std::to_string(iters)}};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("micro_sim", argc, argv, /*default_repeats=*/5,
                         /*default_warmup=*/1);
  const int iters = static_cast<int>(flags.GetInt("iters", 10));

  for (int n : {1 << 10, 1 << 14, 1 << 17}) {
    harness.Run("event_throughput/" + std::to_string(n), Params(n, iters), [&] {
      for (int it = 0; it < iters; ++it) {
        sim::Simulator sim;
        for (int i = 0; i < n; ++i) sim.Schedule(i, [] {});
        sim.Run();
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  {
    const int n = 1 << 14;
    harness.Run("self_rescheduling_event/" + std::to_string(n), Params(n, iters), [&] {
      for (int it = 0; it < iters; ++it) {
        sim::Simulator sim;
        int remaining = n;
        std::function<void()> tick = [&] {
          if (--remaining > 0) sim.Schedule(10, tick);
        };
        sim.Schedule(10, tick);
        sim.Run();
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  for (int n : {1 << 10, 1 << 13}) {
    harness.Run("link_message_rate/" + std::to_string(n), Params(n, iters), [&] {
      int delivered = 0;
      for (int it = 0; it < iters; ++it) {
        sim::Simulator sim;
        net::SimplexLink::Options opts;
        opts.bandwidth_bytes_per_sec = 1.25e9;
        opts.propagation_delay = FromMicros(350);
        net::SimplexLink link(&sim, opts);
        for (int i = 0; i < n; ++i) link.Send(5'000'000, [&] { ++delivered; });
        sim.Run();
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      rep.metrics["delivered_per_iter"] = static_cast<double>(delivered) / iters;
      return rep;
    });
  }

  {
    const int n = 1 << 14;
    harness.Run("cancel_heavy_queue/" + std::to_string(n), Params(n, iters), [&] {
      for (int it = 0; it < iters; ++it) {
        sim::Simulator sim;
        std::vector<sim::EventId> ids;
        ids.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) ids.push_back(sim.Schedule(i + 1, [] {}));
        for (int i = 0; i < n; i += 2) sim.Cancel(ids[static_cast<size_t>(i)]);
        sim.Run();
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  return harness.Finish();
}
