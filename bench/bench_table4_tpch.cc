// Reproduces the workload of paper Table 4 (§5.4) as a *live* suite: TPC-H
// microdata is generated at --scale, loaded into a real ring as BAT
// fragments, and Q1/Q3/Q5/Q6/Q10 run end to end from SQL text — lexer,
// parser, analyzer and MAL plan builder, then the DcOptimizer's
// request/pin/unpin rewrite and the ring protocol — with every result
// checked against an independently computed answer (plain C++ loops over
// the generated tuples, no engine code).
//
// Reported per query: wall time, compute vs ring split (exec_seconds vs
// pin_blocked_seconds), result rows, and validation status. The process
// exits non-zero on any result mismatch, so CI smoke runs double as a
// correctness gate for the SQL front end.
//
// Chaos smoke: --drop/--delay_prob/--delay_ms/--dup/--corrupt attach a
// seeded FaultInjector to every hop, so the same validated answers must
// survive a lossy fabric via the hop-level retransmission layer. The
// resilience counters land in the dcy-bench-v1 JSON as a `resilience` row.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bat/encoding.h"
#include "bench/harness.h"
#include "common/flags.h"
#include "rdma/fault.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"
#include "workload/tpch_data.h"

using namespace dcy;  // NOLINT

namespace {

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

bool ValuesMatch(const bat::Value& got, const bat::Value& want) {
  if (want.type == bat::ValType::kStr) {
    return got.type == bat::ValType::kStr && got.s == want.s;
  }
  if (want.type == bat::ValType::kDbl) {
    const double g = got.AsDouble(), w = want.AsDouble();
    // Sums of ~1e5 cent-quantized terms: tolerate reassociation error.
    return std::fabs(g - w) <= 1e-6 * std::max(1.0, std::max(std::fabs(g), std::fabs(w)));
  }
  return got.AsInt64() == want.AsInt64();
}

/// Compares a live result against the reference; prints the first
/// divergence (or a row-count mismatch) on failure.
bool Validate(int q, const runtime::ResultSet& got, const workload::TpchAnswer& want) {
  if (got.num_columns() != want.names.size()) {
    std::fprintf(stderr, "Q%d: got %zu columns, want %zu\n", q, got.num_columns(),
                 want.names.size());
    return false;
  }
  if (got.num_rows() != want.rows.size()) {
    std::fprintf(stderr, "Q%d: got %zu rows, want %zu\n", q, got.num_rows(),
                 want.rows.size());
    return false;
  }
  for (size_t r = 0; r < want.rows.size(); ++r) {
    for (size_t c = 0; c < want.names.size(); ++c) {
      const bat::Value g = got.ValueAt(r, c);
      if (!ValuesMatch(g, want.rows[r][c])) {
        std::fprintf(stderr, "Q%d: row %zu column %zu (%s): got %s, want %s\n", q, r, c,
                     want.names[c].c_str(), g.ToString().c_str(),
                     want.rows[r][c].ToString().c_str());
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("table4_tpch", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.1);
  const uint32_t nodes = static_cast<uint32_t>(flags.GetInt("nodes", 3));
  const uint32_t iters = static_cast<uint32_t>(flags.GetInt("iters", 2));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 4));
  const double drop = flags.GetDouble("drop", 0.0);
  const double delay_prob = flags.GetDouble("delay_prob", 0.0);
  const double delay_ms = flags.GetDouble("delay_ms", 1.0);
  const double dup = flags.GetDouble("dup", 0.0);
  const double corrupt = flags.GetDouble("corrupt", 0.0);
  const uint64_t fault_seed = static_cast<uint64_t>(flags.GetInt("fault_seed", 71));
  const uint32_t retries = static_cast<uint32_t>(flags.GetInt("retries", 3));
  // Memory-pressure smoke: a per-node budget (0 = unlimited) below the
  // working set forces the two-tier store to spill; answers must stay
  // bit-identical. --spill_dir overrides the private temp dir.
  const uint64_t budget_mb = static_cast<uint64_t>(flags.GetInt("budget_mb", 0));
  const std::string spill_dir = flags.GetString("spill_dir", "");
  // Read/write smoke: --writes=N appends N marker rows to lineitem from
  // concurrent writer threads (deleting every third one) while Q6 re-runs at
  // a snapshot pinned before the first write. The final state is validated
  // against a plain-C++ tracked expectation and the write/compaction
  // counters land in an `updates` bench row.
  const uint32_t writes = static_cast<uint32_t>(flags.GetInt("writes", 0));
  const uint32_t write_threads =
      static_cast<uint32_t>(flags.GetInt("write_threads", 2));
  // --compression=0 ships uncompressed v1 frames (the pre-codec wire format);
  // answers must stay bit-identical either way. The `bandwidth` row records
  // what the codecs bought.
  const bool compression = flags.GetBool("compression", true);
  bat::enc::SetWireCompression(compression);

  std::printf("# Table 4 -- live TPC-H at scale %.3f: SQL -> MAL -> %u-node ring\n",
              scale, nodes);
  const workload::TpchData data = workload::GenerateTpchData(scale);
  std::printf("generated %zu lineitem / %zu orders / %zu customer rows\n",
              data.lineitem.rows(), data.orders.rows(), data.customer.rows());

  // The injector must outlive the ring; wildcard links cover every hop.
  rdma::FaultInjector fault(fault_seed);
  const bool lossy = drop > 0 || delay_prob > 0 || dup > 0 || corrupt > 0;
  if (lossy) {
    const rdma::FaultLink all;  // any src, any dst, any channel
    if (drop > 0) fault.AddRule(rdma::FaultInjector::Drop(all, drop));
    if (delay_prob > 0) {
      fault.AddRule(rdma::FaultInjector::Delay(all, delay_prob, FromMillis(delay_ms)));
    }
    if (dup > 0) fault.AddRule(rdma::FaultInjector::Duplicate(all, dup));
    if (corrupt > 0) fault.AddRule(rdma::FaultInjector::Corrupt(all, corrupt));
    std::printf(
        "# fault schedule: seed=%llu drop=%.3f delay=%.3f@%gms dup=%.3f corrupt=%.3f\n",
        static_cast<unsigned long long>(fault_seed), drop, delay_prob, delay_ms, dup,
        corrupt);
  }

  runtime::RingCluster::Options opts;
  opts.num_nodes = nodes;
  opts.plan_workers = workers;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  if (lossy) opts.fault = &fault;
  if (writes > 0) {
    // Fold aggressively so a short bench run still exercises compaction.
    opts.compaction.max_delta_count = 8;
    opts.compaction.interval = FromMillis(5);
  }
  if (budget_mb > 0) {
    opts.memory.budget_bytes = budget_mb * 1024 * 1024;
    opts.spill_dir = spill_dir;  // empty -> private temp dir per run
    std::printf("# memory: per-node budget %llu MiB, two-tier spill enabled\n",
                static_cast<unsigned long long>(budget_mb));
  }
  runtime::RingCluster ring(opts);
  {
    core::NodeId owner = 0;
    for (auto& [name, b] : workload::TpchBats(data)) {
      DCY_CHECK_OK(ring.LoadBat(owner, name, std::move(b)));
      owner = (owner + 1) % nodes;
    }
  }
  ring.Start();
  auto session_or = ring.OpenSession(0);
  DCY_CHECK_OK(session_or.status());
  runtime::Session session = *session_or;

  int failures = 0;
  for (int q : workload::TpchSqlQueries()) {
    const std::string sql = workload::TpchQuerySql(q);
    const workload::TpchAnswer want = workload::TpchReferenceAnswer(data, q);

    // Language auto-detection routes the text through the SQL compiler; the
    // second Prepare of the same text must be a shared-plan-cache hit.
    const auto before = ring.plan_cache_stats();
    auto prepared = session.Prepare(sql);
    DCY_CHECK_OK(prepared.status());
    auto again = session.Prepare(sql);
    DCY_CHECK_OK(again.status());
    const auto after = ring.plan_cache_stats();
    if (again.value() != prepared.value() || after.hits <= before.hits) {
      std::fprintf(stderr, "Q%d: second Prepare missed the plan cache\n", q);
      ++failures;
    }

    double exec_sec = 0, pin_sec = 0;
    size_t rows = 0;
    bool ok = true;
    harness.Run("q" + std::to_string(q),
                {{"scale", Fmt("%.3f", scale)},
                 {"nodes", std::to_string(nodes)},
                 {"iters", std::to_string(iters)}},
                [&] {
                  bench::RepResult rep;
                  exec_sec = pin_sec = 0;
                  runtime::SubmitOptions sopts;
                  // Lossy fabrics and memory pressure both surface as typed
                  // retryable refusals; the client rides them out.
                  if (lossy || budget_mb > 0) sopts.retry.max_attempts = retries;
                  for (uint32_t i = 0; i < iters; ++i) {
                    auto result = session.Execute(*prepared, sopts);
                    DCY_CHECK_OK(result.status());
                    ok = ok && Validate(q, result->result, want);
                    exec_sec += result->timing.exec_seconds;
                    pin_sec += result->timing.pin_blocked_seconds;
                    rows = result->result.num_rows();
                  }
                  rep.items = iters;
                  rep.metrics["rows"] = static_cast<double>(rows);
                  rep.metrics["exec_sec"] = exec_sec / iters;
                  rep.metrics["pin_blocked_sec"] = pin_sec / iters;
                  rep.metrics["validated"] = ok ? 1.0 : 0.0;
                  return rep;
                });
    if (!ok) ++failures;
    std::printf("Q%-2d %6zu rows  %8.2f ms compute  %8.2f ms ring-blocked  %s\n", q,
                rows, 1e3 * exec_sec / iters, 1e3 * pin_sec / iters,
                ok ? "validated" : "MISMATCH");
  }

  const auto cache = ring.plan_cache_stats();
  std::printf("plan cache: %llu compilations, %llu hits\n",
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.hits));

  // Resilience counters as their own bench row, so lossy CI smoke runs leave
  // an auditable record (retransmits > 0 proves the schedule actually bit).
  const runtime::RingCluster::ResilienceMetrics res = ring.Resilience();
  harness.Run("resilience",
              {{"scale", Fmt("%.3f", scale)}, {"nodes", std::to_string(nodes)}},
              [&] {
                bench::RepResult rep;
                rep.items = 1;
                rep.metrics["retransmits"] = static_cast<double>(res.retransmits);
                rep.metrics["frames_abandoned"] =
                    static_cast<double>(res.frames_abandoned);
                rep.metrics["link_resets"] = static_cast<double>(res.link_resets);
                rep.metrics["frames_corrupted"] =
                    static_cast<double>(res.frames_corrupted);
                rep.metrics["frames_duplicate"] =
                    static_cast<double>(res.frames_duplicate);
                rep.metrics["frames_gap"] = static_cast<double>(res.frames_gap);
                rep.metrics["nacks_sent"] = static_cast<double>(res.nacks_sent);
                rep.metrics["acks_sent"] = static_cast<double>(res.acks_sent);
                rep.metrics["heartbeats_sent"] =
                    static_cast<double>(res.heartbeats_sent);
                rep.metrics["heartbeats_missed"] =
                    static_cast<double>(res.heartbeats_missed);
                rep.metrics["ring_resplices"] = static_cast<double>(res.ring_resplices);
                rep.metrics["injected_dropped"] =
                    static_cast<double>(fault.counters().dropped.load());
                rep.metrics["injected_delayed"] =
                    static_cast<double>(fault.counters().delayed.load());
                rep.metrics["injected_duplicated"] =
                    static_cast<double>(fault.counters().duplicated.load());
                rep.metrics["injected_corrupted"] =
                    static_cast<double>(fault.counters().corrupted.load());
                return rep;
              });
  // Memory counters as their own bench row: a budgeted CI smoke run must
  // show the spill path actually engaged (spills > 0) while every query
  // above still validated.
  const storage::MemoryMetrics mem = ring.Memory();
  harness.Run("memory",
              {{"scale", Fmt("%.3f", scale)},
               {"nodes", std::to_string(nodes)},
               {"budget_mb", std::to_string(budget_mb)}},
              [&] {
                bench::RepResult rep;
                rep.items = 1;
                rep.metrics["budget_bytes"] = static_cast<double>(mem.budget_bytes);
                rep.metrics["resident_bytes"] = static_cast<double>(mem.resident_bytes);
                rep.metrics["spilled_bytes"] = static_cast<double>(mem.spilled_bytes);
                rep.metrics["spills"] = static_cast<double>(mem.spills);
                rep.metrics["spill_bytes"] = static_cast<double>(mem.spill_bytes);
                rep.metrics["evictions"] = static_cast<double>(mem.evictions);
                rep.metrics["promotions"] = static_cast<double>(mem.promotions);
                rep.metrics["promotion_bytes"] =
                    static_cast<double>(mem.promotion_bytes);
                rep.metrics["admission_rejections"] =
                    static_cast<double>(mem.admission_rejections);
                rep.metrics["pressure_waits"] =
                    static_cast<double>(mem.pressure_waits);
                rep.metrics["pressure_sheds"] =
                    static_cast<double>(mem.pressure_sheds);
                rep.metrics["spill_failures"] =
                    static_cast<double>(mem.spill_failures);
                rep.metrics["corrupt_spill_files"] =
                    static_cast<double>(mem.corrupt_spill_files);
                rep.metrics["recovered_from_disk"] =
                    static_cast<double>(mem.recovered_from_disk);
                rep.metrics["refetched_from_ring"] =
                    static_cast<double>(mem.refetched_from_ring);
                return rep;
              });
  // Wire-compression counters as their own bench row: bytes/hop and the
  // encoded/raw ratio are the headline numbers of the codec layer.
  const runtime::RingCluster::BandwidthMetrics bw = ring.Bandwidth();
  harness.Run("bandwidth",
              {{"scale", Fmt("%.3f", scale)},
               {"nodes", std::to_string(nodes)},
               {"compression", compression ? "1" : "0"}},
              [&] {
                bench::RepResult rep;
                rep.items = 1;
                rep.metrics["frames"] = static_cast<double>(bw.frames_encoded);
                rep.metrics["raw_bytes"] = static_cast<double>(bw.raw_bytes);
                rep.metrics["wire_bytes"] = static_cast<double>(bw.wire_bytes);
                rep.metrics["bytes_per_hop"] =
                    bw.hops ? static_cast<double>(bw.hop_bytes) /
                                  static_cast<double>(bw.hops)
                            : 0.0;
                rep.metrics["encoded_vs_raw_bytes"] =
                    bw.raw_bytes ? static_cast<double>(bw.wire_bytes) /
                                       static_cast<double>(bw.raw_bytes)
                                 : 1.0;
                rep.metrics["dict_columns"] = static_cast<double>(bw.dict_columns);
                rep.metrics["for_columns"] = static_cast<double>(bw.for_columns);
                rep.metrics["plain_columns"] = static_cast<double>(bw.plain_columns);
                rep.metrics["compression"] = compression ? 1.0 : 0.0;
                return rep;
              });
  std::printf(
      "bandwidth: %llu frames encoded, %llu -> %llu bytes (ratio %.3f), "
      "%.0f bytes/hop over %llu hops (%llu dict / %llu for / %llu plain columns)\n",
      static_cast<unsigned long long>(bw.frames_encoded),
      static_cast<unsigned long long>(bw.raw_bytes),
      static_cast<unsigned long long>(bw.wire_bytes),
      bw.raw_bytes ? static_cast<double>(bw.wire_bytes) / static_cast<double>(bw.raw_bytes)
                   : 1.0,
      bw.hops ? static_cast<double>(bw.hop_bytes) / static_cast<double>(bw.hops) : 0.0,
      static_cast<unsigned long long>(bw.hops),
      static_cast<unsigned long long>(bw.dict_columns),
      static_cast<unsigned long long>(bw.for_columns),
      static_cast<unsigned long long>(bw.plain_columns));
  if (budget_mb > 0) {
    std::printf(
        "memory: %llu spills (%llu bytes), %llu evictions, %llu promotions, "
        "%llu rejections, %llu resident / %llu spilled bytes at exit\n",
        static_cast<unsigned long long>(mem.spills),
        static_cast<unsigned long long>(mem.spill_bytes),
        static_cast<unsigned long long>(mem.evictions),
        static_cast<unsigned long long>(mem.promotions),
        static_cast<unsigned long long>(mem.admission_rejections),
        static_cast<unsigned long long>(mem.resident_bytes),
        static_cast<unsigned long long>(mem.spilled_bytes));
  }
  if (lossy) {
    std::printf(
        "resilience: %llu retransmits, %llu nacks, %llu corrupted, %llu dup, "
        "%llu gap (injected: %llu dropped / %llu delayed / %llu dup / %llu corrupt)\n",
        static_cast<unsigned long long>(res.retransmits),
        static_cast<unsigned long long>(res.nacks_sent),
        static_cast<unsigned long long>(res.frames_corrupted),
        static_cast<unsigned long long>(res.frames_duplicate),
        static_cast<unsigned long long>(res.frames_gap),
        static_cast<unsigned long long>(fault.counters().dropped.load()),
        static_cast<unsigned long long>(fault.counters().delayed.load()),
        static_cast<unsigned long long>(fault.counters().duplicated.load()),
        static_cast<unsigned long long>(fault.counters().corrupted.load()));
  }
  if (writes > 0) {
    // Pin the pre-write version: a reader at this snapshot must keep seeing
    // the untouched Q6 answer no matter what the writers commit.
    const uint64_t pinned = ring.PinWriteSnapshot();
    const workload::TpchAnswer q6_ref = workload::TpchReferenceAnswer(data, 6);
    const std::string q6_sql = workload::TpchQuerySql(6);
    std::atomic<bool> reader_ok{true};
    std::atomic<bool> stop_reader{false};
    std::atomic<uint64_t> snapshot_reads{0};
    std::thread reader([&] {
      auto rs = ring.OpenSession(1 % nodes);
      if (!rs.ok()) { reader_ok = false; return; }
      auto prep = rs->Prepare(q6_sql);
      if (!prep.ok()) { reader_ok = false; return; }
      while (!stop_reader.load()) {
        runtime::SubmitOptions so;
        so.snapshot_version = pinned;
        so.retry.max_attempts = retries > 0 ? retries : 3;
        auto r = rs->Execute(*prep, so);
        if (!r.ok() || !Validate(6, r->result, q6_ref)) { reader_ok = false; return; }
        ++snapshot_reads;
      }
    });

    // Marker rows: unique l_orderkey far above the generated key space, the
    // ship date outside every benchmark query's window, so the read-suite
    // answers above stay valid at any version.
    constexpr int64_t kMarkerBase = 900000000;
    std::atomic<uint32_t> next{0};
    std::atomic<bool> writers_ok{true};
    std::mutex track_mu;
    double tracked_qty = 0;     // sum(l_quantity) over surviving marker rows
    int64_t tracked_rows = 0;   // surviving marker rows
    uint64_t dels = 0;
    std::vector<std::thread> writer_pool;
    for (uint32_t w = 0; w < std::max(1u, write_threads); ++w) {
      writer_pool.emplace_back([&] {
        auto ws = ring.OpenSession(0);
        if (!ws.ok()) { writers_ok = false; return; }
        runtime::SubmitOptions so;
        so.retry.max_attempts = 10;
        for (uint32_t i = next.fetch_add(1); i < writes; i = next.fetch_add(1)) {
          const int64_t key = kMarkerBase + i;
          const int64_t qty = 1 + i % 5;
          char stmt[512];
          std::snprintf(stmt, sizeof(stmt),
                        "insert into lineitem (l_orderkey, l_suppkey, l_quantity, "
                        "l_extendedprice, l_discount, l_tax, l_returnflag, "
                        "l_linestatus, l_shipdate) values "
                        "(%lld, 1, %lld, %lld, 0.0, 0.0, 'Z', 'Z', 20990101);",
                        static_cast<long long>(key), static_cast<long long>(qty),
                        static_cast<long long>(qty * 1000));
          auto prep = ws->Prepare(stmt);
          if (!prep.ok()) { writers_ok = false; return; }
          auto r = ws->Execute(*prep, so);
          if (!r.ok() || std::get<int64_t>(r->result.scalar()) != 1) {
            writers_ok = false;
            return;
          }
          const bool doomed = i % 3 == 0;
          if (doomed) {
            std::snprintf(stmt, sizeof(stmt),
                          "delete from lineitem where l_orderkey = %lld;",
                          static_cast<long long>(key));
            auto dprep = ws->Prepare(stmt);
            if (!dprep.ok()) { writers_ok = false; return; }
            auto dr = ws->Execute(*dprep, so);
            if (!dr.ok() || std::get<int64_t>(dr->result.scalar()) != 1) {
              writers_ok = false;
              return;
            }
          }
          std::lock_guard<std::mutex> lock(track_mu);
          if (doomed) {
            ++dels;
          } else {
            tracked_qty += static_cast<double>(qty);
            ++tracked_rows;
          }
        }
      });
    }
    for (auto& t : writer_pool) t.join();
    stop_reader = true;
    reader.join();
    ring.UnpinWriteSnapshot(pinned);

    // With the pin released the compactor's idle drain folds the tail; wait
    // for the pending deltas to hit zero so the row below records a state
    // where folding demonstrably ran.
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (ring.Writes().pending_deltas != 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Final state, validated against plain-C++ bookkeeping at the latest
    // version (merged reads while pending, folded bases after the drain).
    bool w_ok = writers_ok.load() && reader_ok.load();
    auto check_scalar = [&](const std::string& sql, double want, const char* what) {
      runtime::SubmitOptions so;
      so.retry.max_attempts = 5;
      auto prep = session.Prepare(sql);
      DCY_CHECK_OK(prep.status());
      auto r = session.Execute(*prep, so);
      DCY_CHECK_OK(r.status());
      const bat::Value got = r->result.ValueAt(0, 0);
      if (std::fabs(got.AsDouble() - want) > 1e-6) {
        std::fprintf(stderr, "updates: %s: got %s, want %.1f\n", what,
                     got.ToString().c_str(), want);
        w_ok = false;
      }
    };
    check_scalar("select count(*) from lineitem;",
                 static_cast<double>(data.lineitem.rows()) + writes - dels,
                 "final row count");
    if (tracked_rows > 0) {
      check_scalar("select sum(l_quantity) from lineitem where l_orderkey >= " +
                       std::to_string(kMarkerBase) + ";",
                   tracked_qty, "marker quantity sum");
    }

    const write::WriteMetrics wm = ring.Writes();
    harness.Run("updates",
                {{"scale", Fmt("%.3f", scale)},
                 {"nodes", std::to_string(nodes)},
                 {"writes", std::to_string(writes)}},
                [&] {
                  bench::RepResult rep;
                  rep.items = writes;
                  rep.metrics["commits"] = static_cast<double>(wm.commits);
                  rep.metrics["rows_inserted"] = static_cast<double>(wm.rows_inserted);
                  rep.metrics["rows_deleted"] = static_cast<double>(wm.rows_deleted);
                  rep.metrics["deltas_published"] =
                      static_cast<double>(wm.deltas_published);
                  rep.metrics["deltas_merged"] = static_cast<double>(wm.deltas_merged);
                  rep.metrics["deltas_folded"] = static_cast<double>(wm.deltas_folded);
                  rep.metrics["merges"] = static_cast<double>(wm.merges);
                  rep.metrics["merge_cache_hits"] =
                      static_cast<double>(wm.merge_cache_hits);
                  rep.metrics["compactions"] = static_cast<double>(wm.compactions);
                  rep.metrics["compactions_abandoned"] =
                      static_cast<double>(wm.compactions_abandoned);
                  rep.metrics["snapshots_rejected"] =
                      static_cast<double>(wm.snapshots_rejected);
                  rep.metrics["delta_frames_forwarded"] =
                      static_cast<double>(wm.delta_frames_forwarded);
                  rep.metrics["delta_bytes_on_ring"] =
                      static_cast<double>(wm.delta_bytes_on_ring);
                  rep.metrics["current_version"] =
                      static_cast<double>(wm.current_version);
                  rep.metrics["pending_deltas"] =
                      static_cast<double>(wm.pending_deltas);
                  rep.metrics["snapshot_reads"] =
                      static_cast<double>(snapshot_reads.load());
                  rep.metrics["validated"] = w_ok ? 1.0 : 0.0;
                  return rep;
                });
    std::printf(
        "updates: %u inserts / %llu deletes across %u writer(s), %llu pinned-"
        "snapshot Q6 reads, %llu commits -> %llu deltas published / %llu merged "
        "/ %llu folded (%llu compactions), %s\n",
        writes, static_cast<unsigned long long>(dels), std::max(1u, write_threads),
        static_cast<unsigned long long>(snapshot_reads.load()),
        static_cast<unsigned long long>(wm.commits),
        static_cast<unsigned long long>(wm.deltas_published),
        static_cast<unsigned long long>(wm.deltas_merged),
        static_cast<unsigned long long>(wm.deltas_folded),
        static_cast<unsigned long long>(wm.compactions),
        w_ok ? "validated" : "MISMATCH");
    if (!w_ok) ++failures;
  }

  const int rc = harness.Finish();
  return failures > 0 ? 1 : rc;
}
