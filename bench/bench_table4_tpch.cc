// Reproduces paper Table 4 (§5.4): TPC-H SF-5 trace-driven scale-out.
//
//   #nodes  exec(sec)  throughput  throughP/node  CPU%
//
// Rows: a "MonetDB" baseline (single node with real-DBMS thread overhead
// emulated as CPU inflation), then rings of 1..8 nodes, 1200 queries per
// node at 8 q/s, 4 cores per node. Expected shape: throughput scales with
// nodes at ~constant throughput/node, while exec time grows mildly and
// CPU%% decays from ~99% towards ~85% as data-access latency rises.
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

namespace {

dcy::bench::RepResult RepFromRow(const TpchRow& row, uint32_t queries) {
  dcy::bench::RepResult rep;
  rep.items = static_cast<double>(queries) * row.num_nodes;
  rep.metrics["exec_sec"] = row.exec_sec;
  rep.metrics["tpch_throughput"] = row.throughput;
  rep.metrics["tpch_throughput_per_node"] = row.throughput_per_node;
  rep.metrics["cpu_percent"] = row.cpu_percent;
  rep.metrics["drained"] = row.drained ? 1.0 : 0.0;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("table4_tpch", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  // Default scale: 300 queries/node (paper: 1200) for bench-suite runtimes.
  const uint32_t queries = static_cast<uint32_t>(flags.GetInt("queries_per_node", 300));
  const uint32_t max_nodes = static_cast<uint32_t>(flags.GetInt("max_nodes", 8));
  const double monetdb_inflation = flags.GetDouble("monetdb_inflation", 420.0 / 317.0);

  std::printf("# Table 4 -- TPC-H SF-5 (synthetic traces, %u queries/node @ 8 q/s, "
              "4 cores/node)\n", queries);
  std::printf("%-8s %9s %12s %16s %7s\n", "#nodes", "exec(sec)", "throughput",
              "throughP/node", "CPU%");

  {
    // "MonetDB": single node, operator times inflated by the measured
    // real-DBMS factor; only useful work counts towards CPU%.
    TpchExperimentOptions opts;
    opts.num_nodes = 1;
    opts.tpch.queries_per_node = queries;
    opts.tpch.cpu_inflation = monetdb_inflation;
    TpchRow row;
    harness.Run("monetdb_baseline",
                {{"nodes", "1"},
                 {"queries_per_node", std::to_string(queries)},
                 {"cpu_inflation", bench::Fmt("%.3f", monetdb_inflation)}},
                [&] {
                  row = RunTpchExperiment(opts);
                  return RepFromRow(row, queries);
                });
    std::printf("%s\n", FormatTpchRow(row).c_str());
  }

  for (uint32_t nodes = 1; nodes <= max_nodes; ++nodes) {
    TpchExperimentOptions opts;
    opts.num_nodes = nodes;
    opts.tpch.queries_per_node = queries;
    TpchRow row;
    harness.Run("ring_" + std::to_string(nodes) + "_nodes",
                {{"nodes", std::to_string(nodes)},
                 {"queries_per_node", std::to_string(queries)}},
                [&] {
                  row = RunTpchExperiment(opts);
                  return RepFromRow(row, queries);
                });
    std::printf("%s\n", FormatTpchRow(row).c_str());
  }
  return harness.Finish();
}
