// Reproduces the workload of paper Table 4 (§5.4) as a *live* suite: TPC-H
// microdata is generated at --scale, loaded into a real ring as BAT
// fragments, and Q1/Q3/Q5/Q6/Q10 run end to end from SQL text — lexer,
// parser, analyzer and MAL plan builder, then the DcOptimizer's
// request/pin/unpin rewrite and the ring protocol — with every result
// checked against an independently computed answer (plain C++ loops over
// the generated tuples, no engine code).
//
// Reported per query: wall time, compute vs ring split (exec_seconds vs
// pin_blocked_seconds), result rows, and validation status. The process
// exits non-zero on any result mismatch, so CI smoke runs double as a
// correctness gate for the SQL front end.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "common/flags.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"
#include "workload/tpch_data.h"

using namespace dcy;  // NOLINT

namespace {

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

bool ValuesMatch(const bat::Value& got, const bat::Value& want) {
  if (want.type == bat::ValType::kStr) {
    return got.type == bat::ValType::kStr && got.s == want.s;
  }
  if (want.type == bat::ValType::kDbl) {
    const double g = got.AsDouble(), w = want.AsDouble();
    // Sums of ~1e5 cent-quantized terms: tolerate reassociation error.
    return std::fabs(g - w) <= 1e-6 * std::max(1.0, std::max(std::fabs(g), std::fabs(w)));
  }
  return got.AsInt64() == want.AsInt64();
}

/// Compares a live result against the reference; prints the first
/// divergence (or a row-count mismatch) on failure.
bool Validate(int q, const runtime::ResultSet& got, const workload::TpchAnswer& want) {
  if (got.num_columns() != want.names.size()) {
    std::fprintf(stderr, "Q%d: got %zu columns, want %zu\n", q, got.num_columns(),
                 want.names.size());
    return false;
  }
  if (got.num_rows() != want.rows.size()) {
    std::fprintf(stderr, "Q%d: got %zu rows, want %zu\n", q, got.num_rows(),
                 want.rows.size());
    return false;
  }
  for (size_t r = 0; r < want.rows.size(); ++r) {
    for (size_t c = 0; c < want.names.size(); ++c) {
      const bat::Value g = got.ValueAt(r, c);
      if (!ValuesMatch(g, want.rows[r][c])) {
        std::fprintf(stderr, "Q%d: row %zu column %zu (%s): got %s, want %s\n", q, r, c,
                     want.names[c].c_str(), g.ToString().c_str(),
                     want.rows[r][c].ToString().c_str());
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("table4_tpch", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.1);
  const uint32_t nodes = static_cast<uint32_t>(flags.GetInt("nodes", 3));
  const uint32_t iters = static_cast<uint32_t>(flags.GetInt("iters", 2));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 4));

  std::printf("# Table 4 -- live TPC-H at scale %.3f: SQL -> MAL -> %u-node ring\n",
              scale, nodes);
  const workload::TpchData data = workload::GenerateTpchData(scale);
  std::printf("generated %zu lineitem / %zu orders / %zu customer rows\n",
              data.lineitem.rows(), data.orders.rows(), data.customer.rows());

  runtime::RingCluster::Options opts;
  opts.num_nodes = nodes;
  opts.plan_workers = workers;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  runtime::RingCluster ring(opts);
  {
    core::NodeId owner = 0;
    for (auto& [name, b] : workload::TpchBats(data)) {
      DCY_CHECK_OK(ring.LoadBat(owner, name, std::move(b)));
      owner = (owner + 1) % nodes;
    }
  }
  ring.Start();
  auto session_or = ring.OpenSession(0);
  DCY_CHECK_OK(session_or.status());
  runtime::Session session = *session_or;

  int failures = 0;
  for (int q : workload::TpchSqlQueries()) {
    const std::string sql = workload::TpchQuerySql(q);
    const workload::TpchAnswer want = workload::TpchReferenceAnswer(data, q);

    // Language auto-detection routes the text through the SQL compiler; the
    // second Prepare of the same text must be a shared-plan-cache hit.
    const auto before = ring.plan_cache_stats();
    auto prepared = session.Prepare(sql);
    DCY_CHECK_OK(prepared.status());
    auto again = session.Prepare(sql);
    DCY_CHECK_OK(again.status());
    const auto after = ring.plan_cache_stats();
    if (again.value() != prepared.value() || after.hits <= before.hits) {
      std::fprintf(stderr, "Q%d: second Prepare missed the plan cache\n", q);
      ++failures;
    }

    double exec_sec = 0, pin_sec = 0;
    size_t rows = 0;
    bool ok = true;
    harness.Run("q" + std::to_string(q),
                {{"scale", Fmt("%.3f", scale)},
                 {"nodes", std::to_string(nodes)},
                 {"iters", std::to_string(iters)}},
                [&] {
                  bench::RepResult rep;
                  exec_sec = pin_sec = 0;
                  for (uint32_t i = 0; i < iters; ++i) {
                    auto result = session.Execute(*prepared);
                    DCY_CHECK_OK(result.status());
                    ok = ok && Validate(q, result->result, want);
                    exec_sec += result->timing.exec_seconds;
                    pin_sec += result->timing.pin_blocked_seconds;
                    rows = result->result.num_rows();
                  }
                  rep.items = iters;
                  rep.metrics["rows"] = static_cast<double>(rows);
                  rep.metrics["exec_sec"] = exec_sec / iters;
                  rep.metrics["pin_blocked_sec"] = pin_sec / iters;
                  rep.metrics["validated"] = ok ? 1.0 : 0.0;
                  return rep;
                });
    if (!ok) ++failures;
    std::printf("Q%-2d %6zu rows  %8.2f ms compute  %8.2f ms ring-blocked  %s\n", q,
                rows, 1e3 * exec_sec / iters, 1e3 * pin_sec / iters,
                ok ? "validated" : "MISMATCH");
  }

  const auto cache = ring.plan_cache_stats();
  std::printf("plan cache: %llu compilations, %llu hits\n",
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.hits));
  const int rc = harness.Finish();
  return failures > 0 ? 1 : rc;
}
