// Reproduces paper Figure 6 (§5.1 "Limited Ring Capacity"):
//   (a) query throughput over time for LOIT_n = 0.1 .. 1.1 in steps of 0.1,
//   (b) the query life-time histogram for LOIT_n in {0.1, 0.5, 1.1}.
//
// Output: TSV series equivalent to the paper's plots, plus a summary table.
// Flags: --scale=0.2 (default; 1.0 = full paper size), --nodes, --duration_s,
// plus the shared harness flags (--repeat, --warmup, --json [path]).
#include <cstdio>
#include <map>
#include <vector>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "common/stats.h"
#include "simdc/experiments.h"

using namespace dcy;          // NOLINT
using namespace dcy::simdc;   // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("fig6_loit", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.2);
  const double duration_s = flags.GetDouble("duration_s", 60.0);
  const uint32_t nodes = static_cast<uint32_t>(flags.GetInt("nodes", 10));

  std::printf("# Figure 6 -- query throughput and life time vs LOIT (scale=%.2f)\n", scale);
  std::printf("# setup: %u nodes, 10 Gb/s, 350 us, %.0f MB queues, 1000*scale BATs 1-10 MB\n",
              nodes, 200.0 * scale);

  std::map<int, ExperimentResult> results;  // key: LOIT*10
  for (int l = 1; l <= 11; ++l) {
    UniformExperimentOptions opts;
    opts.loit = l / 10.0;
    opts.num_nodes = nodes;
    opts.duration = FromSeconds(duration_s);
    opts.scale = scale;
    results[l] = bench::RunExperimentCase(
        harness, "loit_" + bench::Fmt("%.1f", l / 10.0),
        {{"loit", bench::Fmt("%.1f", l / 10.0)},
         {"scale", bench::Fmt("%.2f", scale)},
         {"nodes", std::to_string(nodes)},
         {"duration_s", bench::Fmt("%.0f", duration_s)}},
        [&] { return RunUniformExperiment(opts); });
  }

  // --- Fig. 6a: cumulative executed queries over time per LOIT. ------------
  std::printf("\n## Fig 6a: cumulative finished queries over time (TSV)\n");
  std::printf("time_s\tregistered");
  for (int l = 1; l <= 11; ++l) std::printf("\tLoiT_%.1f", l / 10.0);
  std::printf("\n");
  double horizon = 0;
  for (auto& [l, r] : results) horizon = std::max(horizon, ToSeconds(r.sim_end));
  for (double t = 0; t <= horizon + 1e-9; t += 5.0) {
    std::printf("%.0f", t);
    const auto& reg = results.at(11).collector->query_series().all().at("registered");
    std::printf("\t%.0f", reg.At(t));
    for (int l = 1; l <= 11; ++l) {
      const auto& s = results.at(l).collector->query_series().all().at("finished");
      std::printf("\t%.0f", s.At(t));
    }
    std::printf("\n");
  }

  // --- Fig. 6b: life-time histogram for three thresholds. ------------------
  std::printf("\n## Fig 6b: query life time histogram (TSV; 5 s buckets)\n");
  std::printf("life_s\tLoiT_0.1\tLoiT_0.5\tLoiT_1.1\n");
  std::vector<Histogram> hist;
  for (int l : {1, 5, 11}) {
    Histogram h(0.0, 200.0, 40);
    for (double life : results.at(l).collector->lifetimes_sec()) h.Add(life);
    hist.push_back(std::move(h));
  }
  for (size_t b = 0; b < hist[0].num_buckets(); ++b) {
    std::printf("%.0f\t%llu\t%llu\t%llu\n", hist[0].bucket_lo(b),
                static_cast<unsigned long long>(hist[0].bucket_count(b)),
                static_cast<unsigned long long>(hist[1].bucket_count(b)),
                static_cast<unsigned long long>(hist[2].bucket_count(b)));
  }

  // --- Summary: the paper's qualitative claims. -----------------------------
  std::printf("\n## Summary per LOIT\n");
  std::printf("loit\tfinished\tlast_finish_s\tmean_life_s\tp95_life_s\tloads\tunloads\tpending\n");
  for (auto& [l, r] : results) {
    Histogram h(0.0, 400.0, 400);
    for (double life : r.collector->lifetimes_sec()) h.Add(life);
    std::printf("%.1f\t%llu\t%.1f\t%.2f\t%.2f\t%llu\t%llu\t%llu%s\n", l / 10.0,
                static_cast<unsigned long long>(r.finished), ToSeconds(r.last_finish),
                r.collector->lifetime_stat().mean(), h.Percentile(95),
                static_cast<unsigned long long>(r.collector->total_loads()),
                static_cast<unsigned long long>(r.collector->total_unloads()),
                static_cast<unsigned long long>(r.collector->total_pending_tags()),
                r.drained ? "" : "\t[NOT DRAINED]");
  }
  return harness.Finish();
}
