// Reproduces paper Figure 7 (§5.1): ring load over time, in bytes (7a) and
// in number of BATs (7b), for LOIT_n in {0.1, 0.5, 1.1}.
//
// The paper's reading: at low LOIT the ring saturates and fills with ever
// smaller BATs (load in bytes stays at capacity while the BAT count rises),
// because dropped slots are refilled by the pending list's small entries.
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("fig7_ring_load", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.2);

  std::printf("# Figure 7 -- ring load in bytes / #BATs over time (scale=%.2f)\n", scale);

  std::map<int, ExperimentResult> results;
  for (int l : {1, 5, 11}) {
    UniformExperimentOptions opts;
    opts.loit = l / 10.0;
    opts.scale = scale;
    results[l] = bench::RunExperimentCase(
        harness, "loit_" + bench::Fmt("%.1f", l / 10.0),
        {{"loit", bench::Fmt("%.1f", l / 10.0)}, {"scale", bench::Fmt("%.2f", scale)}},
        [&] { return RunUniformExperiment(opts); });
  }

  double horizon = 0;
  for (auto& [l, r] : results) horizon = std::max(horizon, ToSeconds(r.sim_end));

  std::printf("\n## Fig 7a: ring load in bytes (TSV)\n");
  std::printf("time_s\tLoiT_0.1\tLoiT_0.5\tLoiT_1.1\n");
  for (double t = 0; t <= horizon + 1e-9; t += 2.0) {
    std::printf("%.0f", t);
    for (int l : {1, 5, 11}) {
      const auto& s = results.at(l).collector->ring_series().all().at("total_bytes");
      std::printf("\t%.0f", s.At(t));
    }
    std::printf("\n");
  }

  std::printf("\n## Fig 7b: ring load in #BATs (TSV)\n");
  std::printf("time_s\tLoiT_0.1\tLoiT_0.5\tLoiT_1.1\n");
  for (double t = 0; t <= horizon + 1e-9; t += 2.0) {
    std::printf("%.0f", t);
    for (int l : {1, 5, 11}) {
      const auto& s = results.at(l).collector->ring_series().all().at("total_bats");
      std::printf("\t%.0f", s.At(t));
    }
    std::printf("\n");
  }

  std::printf("\n## Mean BAT size in the ring over time (bytes/bat; small-BAT bias check)\n");
  std::printf("time_s\tLoiT_0.1\tLoiT_0.5\tLoiT_1.1\n");
  for (double t = 0; t <= horizon + 1e-9; t += 10.0) {
    std::printf("%.0f", t);
    for (int l : {1, 5, 11}) {
      const auto& all = results.at(l).collector->ring_series().all();
      const double bytes = all.at("total_bytes").At(t);
      const double bats = all.at("total_bats").At(t);
      std::printf("\t%.0f", bats > 0 ? bytes / bats : 0.0);
    }
    std::printf("\n");
  }
  return harness.Finish();
}
