// Shared glue between the simdc experiment runners and the bench harness:
// turns an ExperimentResult into the RepResult scalars every figure bench
// reports (items = finished queries, plus the paper's summary columns).
#pragma once

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "common/stats.h"
#include "simdc/experiments.h"

namespace dcy::bench {

/// snprintf-style formatting for param map values ("%.2f" etc.).
inline std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

inline RepResult RepFromExperiment(const simdc::ExperimentResult& r) {
  RepResult rep;
  rep.items = static_cast<double>(r.finished);
  rep.metrics["registered"] = static_cast<double>(r.registered);
  rep.metrics["finished"] = static_cast<double>(r.finished);
  rep.metrics["failed"] = static_cast<double>(r.failed);
  rep.metrics["last_finish_s"] = ToSeconds(r.last_finish);
  rep.metrics["mean_life_s"] = r.collector->lifetime_stat().mean();
  Histogram h(0.0, 400.0, 4000);
  for (double life : r.collector->lifetimes_sec()) h.Add(life);
  rep.metrics["p95_life_s"] = h.Percentile(95);
  rep.metrics["loads"] = static_cast<double>(r.collector->total_loads());
  rep.metrics["unloads"] = static_cast<double>(r.collector->total_unloads());
  rep.metrics["request_msgs"] = static_cast<double>(r.collector->total_dispatches());
  rep.metrics["drained"] = r.drained ? 1.0 : 0.0;
  return rep;
}

/// Runs `run` as a harness case with the standard experiment metrics and
/// hands back the last repetition's result (for the bench's TSV output).
/// `extra` can add bench-specific metrics to each repetition.
inline simdc::ExperimentResult RunExperimentCase(
    Harness& harness, const std::string& name,
    const std::map<std::string, std::string>& params,
    const std::function<simdc::ExperimentResult()>& run,
    const std::function<void(const simdc::ExperimentResult&, RepResult*)>& extra = {}) {
  simdc::ExperimentResult result;
  harness.Run(name, params, [&] {
    result = run();
    RepResult rep = RepFromExperiment(result);
    if (extra) extra(result, &rep);
    return rep;
  });
  return result;
}

}  // namespace dcy::bench
