// Micro-benchmarks of the BAT engine operators (M1): select / hash join /
// merge join / semijoin / sort / group-aggregate throughput, plus the bulk
// BAT serializer on the ring hot path, the morsel-parallel engine with a
// workers axis (par_* cases — select/join/aggregate since issue 3;
// sort/topn, the radix-partitioned join build, and the two-pass string
// gather since issue 5; --workers=N pins one point, --workers=0 sweeps
// 1/2/4/8; --morsel_rows tunes the stealing granule, --scale shrinks the
// parallel input for smoke runs), and the session query API on a live ring
// (query_prepared vs query_reparse, --sessions=1/4/16 concurrency axis).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bat/kernels.h"
#include "bat/operators.h"
#include "bat/serialize.h"
#include "bench/harness.h"
#include "common/flags.h"
#include "common/random.h"
#include "exec/executor.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"

namespace {

using namespace dcy;       // NOLINT
using namespace dcy::bat;  // NOLINT
using bench::RepResult;

BatPtr RandomIntBat(size_t n, int32_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng.UniformInt(0, domain));
  return Bat::MakeColumn(MakeIntColumn(std::move(v)));
}

std::map<std::string, std::string> Params(size_t n, int iters) {
  return {{"n", std::to_string(n)}, {"iters", std::to_string(iters)}};
}

std::map<std::string, std::string> ParParams(size_t n, size_t workers,
                                             size_t morsel_rows) {
  return {{"n", std::to_string(n)},
          {"workers", std::to_string(workers)},
          {"morsel_rows", std::to_string(morsel_rows)}};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("micro_engine", argc, argv, /*default_repeats=*/5,
                         /*default_warmup=*/1);
  const int iters = static_cast<int>(flags.GetInt("iters", 20));
  // --compression=0 pins the v1 (uncompressed) wire format; the encoded
  // cases then measure the plain-string/plain-int paths on the same data.
  const bool compression = flags.GetBool("compression", true);
  enc::SetWireCompression(compression);

  for (size_t n : {size_t{1} << 12, size_t{1} << 16, size_t{1} << 20}) {
    auto b = RandomIntBat(n, 1000, 1);
    harness.Run("select_range/" + std::to_string(n), Params(n, iters), [&] {
      for (int i = 0; i < iters; ++i) {
        auto r = SelectRange(b, Value::MakeInt(100), Value::MakeInt(300));
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  for (size_t n : {size_t{1} << 12, size_t{1} << 16}) {
    auto l = RandomIntBat(n, static_cast<int32_t>(n / 4), 2);
    auto r = Reverse(RandomIntBat(n / 4, static_cast<int32_t>(n / 4), 3));
    harness.Run("hash_join/" + std::to_string(n), Params(n, iters), [&] {
      for (int i = 0; i < iters; ++i) {
        auto out = Join(l, r);
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  for (size_t n : {size_t{1} << 12, size_t{1} << 16}) {
    Rng rng(4);
    std::vector<int32_t> lk(n), rk(n / 4);
    for (auto& x : lk) x = static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(n)));
    for (auto& x : rk) x = static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(n)));
    std::sort(lk.begin(), lk.end());
    std::sort(rk.begin(), rk.end());
    Bat::Properties lp;
    lp.tsorted = true;
    lp.hsorted = true;
    auto l = std::make_shared<Bat>(MakeDenseOid(0, n), MakeIntColumn(std::move(lk)), lp);
    Bat::Properties rp;
    rp.hsorted = true;
    auto r = std::make_shared<Bat>(MakeIntColumn(std::move(rk)), MakeDenseOid(0, n / 4), rp);
    harness.Run("merge_join/" + std::to_string(n), Params(n, iters), [&] {
      for (int i = 0; i < iters; ++i) {
        auto out = Join(BatPtr(l), BatPtr(r));
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  for (size_t n : {size_t{1} << 12, size_t{1} << 16}) {
    auto b = RandomIntBat(n, 1 << 30, 5);
    harness.Run("sort/" + std::to_string(n), Params(n, iters), [&] {
      for (int i = 0; i < iters; ++i) {
        auto r = Sort(b);
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  for (size_t n : {size_t{1} << 12, size_t{1} << 16}) {
    auto b = RandomIntBat(n, 64, 6);
    harness.Run("group_aggregate/" + std::to_string(n), Params(n, iters), [&] {
      for (int i = 0; i < iters; ++i) {
        auto gids = GroupId(b);
        auto sums = SumPerGroup(b, *gids, 65);
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  for (size_t n : {size_t{1} << 12, size_t{1} << 16}) {
    auto l = Reverse(RandomIntBat(n, static_cast<int32_t>(n / 2), 7));
    auto r = Reverse(RandomIntBat(n / 4, static_cast<int32_t>(n / 2), 8));
    harness.Run("semijoin/" + std::to_string(n), Params(n, iters), [&] {
      for (int i = 0; i < iters; ++i) {
        auto in = SemiJoin(l, r);
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      return rep;
    });
  }

  // Morsel-parallel engine: the same hot operators at ring-fragment scale
  // (default 4M rows) across a worker axis, so run-over-run reports expose
  // the scaling curve. workers=1 is the sequential engine (the parallel
  // kernels fall back below min_parallel_rows and when only one worker
  // would participate) — its p50 is the no-regression baseline.
  {
    const auto scale = flags.GetDouble("scale", 1.0);
    const size_t par_rows = std::max<size_t>(
        size_t{1} << 16, static_cast<size_t>(scale * static_cast<double>(1 << 22)));
    const size_t morsel_rows =
        static_cast<size_t>(flags.GetInt("morsel_rows", 64 * 1024));
    const int64_t pinned = flags.GetInt("workers", 0);
    std::vector<size_t> axis;
    if (pinned > 0) {
      axis.push_back(static_cast<size_t>(pinned));
    } else {
      axis = {1, 2, 4, 8};
    }

    auto probe = RandomIntBat(par_rows, static_cast<int32_t>(par_rows / 4), 10);
    auto build = Reverse(RandomIntBat(par_rows / 4, static_cast<int32_t>(par_rows / 4), 11));
    auto values = RandomIntBat(par_rows, 1 << 20, 12);
    auto gids = RandomIntBat(par_rows, 255, 13);
    auto sort_input = RandomIntBat(par_rows, 1 << 30, 15);
    // Sparse 64-bit build keys: the partitioned open-addressing build (a
    // compact domain would collapse to direct addressing).
    std::vector<int64_t> build_keys(par_rows);
    {
      Rng rng(16);
      for (auto& k : build_keys) {
        k = static_cast<int64_t>(rng.UniformU64(0, ~uint64_t{0} >> 1));
      }
    }
    // String gather input: par_rows short strings, gathered in random order.
    BatPtr str_bat;
    std::vector<uint32_t> str_idx(par_rows);
    {
      Rng rng(17);
      ColumnBuilder sb(ValType::kStr);
      std::string s;
      for (size_t i = 0; i < par_rows; ++i) {
        s = "v" + std::to_string(rng.UniformU64(0, 1 << 16));
        sb.AppendString(s);
      }
      str_bat = Bat::MakeColumn(sb.Finish());
      for (auto& x : str_idx) {
        x = static_cast<uint32_t>(rng.UniformU64(0, par_rows - 1));
      }
    }
    // Encoded-kernel inputs, built through the wire round trip so the cases
    // measure the kernels on exactly what the ring delivers: a
    // low-cardinality string fragment (a dictionary column when compression
    // is on, a plain heap when off) and a sorted int64 fragment (a FOR
    // frame when compression is on).
    BatPtr dict_bat;
    std::string sorted_frame;
    const std::string dict_needle = "grp-0042";
    {
      Rng rng(18);
      ColumnBuilder sb(ValType::kStr);
      std::string s;
      char buf[16];
      for (size_t i = 0; i < par_rows; ++i) {
        std::snprintf(buf, sizeof(buf), "grp-%04d",
                      static_cast<int>(rng.UniformU64(0, 63)));
        sb.AppendString(buf);
      }
      auto plain = Bat::MakeColumn(sb.Finish());
      dict_bat = *Deserialize(Serialize(*plain));
      std::vector<int64_t> sorted(par_rows);
      int64_t acc = 1'000'000;
      for (auto& x : sorted) {
        acc += static_cast<int64_t>(rng.UniformU64(0, 7));
        x = acc;
      }
      auto sorted_bat = Bat::MakeColumn(MakeLngColumn(std::move(sorted)));
      sorted_bat->tail()->IsSorted();  // memoize: the FOR codec trigger
      SerializeInto(*sorted_bat, &sorted_frame);
    }

    for (size_t w : axis) {
      exec::ExecPolicy policy;
      policy.workers = w;
      policy.morsel_rows = morsel_rows;
      policy.min_parallel_rows = size_t{1} << 16;
      exec::ScopedExecPolicy scoped(policy);
      const std::string suffix = "/" + std::to_string(par_rows) + "/w" + std::to_string(w);

      harness.Run("par_select_range" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        auto r = SelectRange(values, Value::MakeInt(1 << 18), Value::MakeInt(3 << 18));
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["selected"] = r.ok() ? static_cast<double>((*r)->size()) : -1.0;
        return rep;
      });

      harness.Run("par_hash_join" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        auto out = Join(probe, build);
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["matches"] = out.ok() ? static_cast<double>((*out)->size()) : -1.0;
        return rep;
      });

      harness.Run("par_aggregate" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        auto total = Sum(values);
        auto per_group = SumPerGroup(values, gids, 256);
        auto counts = CountPerGroup(gids, 256);
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["sum_ok"] =
            total.ok() && per_group.ok() && counts.ok() ? 1.0 : 0.0;
        return rep;
      });

      harness.Run("par_sort" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        auto r = Sort(sort_input);
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["rows"] = r.ok() ? static_cast<double>((*r)->size()) : -1.0;
        return rep;
      });

      harness.Run("par_topn" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        auto r = TopN(sort_input, 100, /*descending=*/true);
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["rows"] = r.ok() ? static_cast<double>((*r)->size()) : -1.0;
        return rep;
      });

      harness.Run("par_join_build" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        // Isolates the radix-partitioned hash build (no probe).
        kernels::PartitionedTable table(build_keys.data(), build_keys.size());
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["partitions"] = static_cast<double>(table.partitions());
        return rep;
      });

      harness.Run("par_str_gather" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        // Two-pass parallel string materialization (size scan + splice).
        auto col = kernels::Gather(*str_bat->tail(), str_idx.data(), str_idx.size());
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["heap_bytes"] = static_cast<double>(col->ByteSize());
        return rep;
      });

      harness.Run("dict_select" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        // String equality on the ring-delivered column: one dictionary
        // binary search + a SIMD integer scan over the codes when encoded,
        // a full heap scan when not.
        auto r = Select(dict_bat, Value::MakeStr(dict_needle));
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["selected"] = r.ok() ? static_cast<double>((*r)->size()) : -1.0;
        return rep;
      });

      harness.Run("for_unpack" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        // Decode of a sorted int64 fragment: FOR unpack (SIMD gather +
        // shift) when encoded, a plain memcpy when not.
        auto restored = Deserialize(sorted_frame);
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["rows"] =
            restored.ok() ? static_cast<double>((*restored)->size()) : -1.0;
        return rep;
      });

      harness.Run("encoded_roundtrip" + suffix, ParParams(par_rows, w, morsel_rows), [&] {
        // Full encode + decode of the low-cardinality string fragment (the
        // string-heavy counterpart of serialize_roundtrip below).
        std::string frame;
        SerializeInto(*dict_bat, &frame);
        auto restored = Deserialize(frame);
        RepResult rep;
        rep.items = static_cast<double>(par_rows);
        rep.metrics["frame_bytes"] =
            restored.ok() ? static_cast<double>(frame.size()) : -1.0;
        return rep;
      });
    }
  }

  // Query API control path on a live 3-node ring (small fragments, so the
  // numbers isolate plan preparation + submission + admission cost, not scan
  // cost): prepared-vs-reparse execution, and a concurrent-sessions axis
  // (--sessions=N pins one point, default sweeps 1/4/16) where submissions
  // beyond the per-node admission cap degrade to FIFO queuing.
  {
    const auto scale = flags.GetDouble("scale", 1.0);
    const size_t ring_rows = std::max<size_t>(
        size_t{1} << 10, static_cast<size_t>(scale * static_cast<double>(1 << 16)));
    runtime::RingCluster::Options ropts;
    ropts.num_nodes = 3;
    ropts.node.load_all_period = FromMillis(2);
    ropts.node.maintenance_period = FromMillis(10);
    ropts.node.adapt_period = FromMillis(10);
    ropts.node.initial_rotation_estimate = FromMillis(5);
    runtime::RingCluster ring(ropts);
    {
      Rng rng(14);
      std::vector<int32_t> t(ring_rows), c(ring_rows);
      for (auto& x : t) x = static_cast<int32_t>(rng.UniformInt(0, 1 << 20));
      for (auto& x : c) x = static_cast<int32_t>(rng.UniformInt(0, 1 << 20));
      DCY_CHECK_OK(ring.LoadBat(1, "sys.t.id",
                                Bat::MakeColumn(MakeIntColumn(std::move(t)))));
      DCY_CHECK_OK(ring.LoadBat(2, "sys.c.t_id",
                                Bat::MakeColumn(MakeIntColumn(std::move(c)))));
    }
    ring.Start();

    const std::string plan_text = R"(
X1 := sql.bind("sys","t","id",0);
X2 := sql.bind("sys","c","t_id",0);
X3 := batcalc.add(X1, X2);
X4 := aggr.sum(X3);
)";
    const int query_iters = std::max(1, static_cast<int>(iters / 4));
    auto warm = ring.OpenSession(0);
    DCY_CHECK_OK(warm.status());
    DCY_CHECK_OK(warm->Execute(plan_text).status());  // hot-set warmup

    harness.Run("query_reparse/" + std::to_string(ring_rows),
                Params(ring_rows, query_iters), [&] {
                  double blocked = 0.0;
                  for (int i = 0; i < query_iters; ++i) {
                    auto p = ring.Prepare(plan_text, /*optimize=*/true,
                                          /*use_cache=*/false);
                    DCY_CHECK_OK(p.status());
                    auto r = warm->Execute(*p);
                    DCY_CHECK_OK(r.status());
                    blocked += r->timing.pin_blocked_seconds;
                  }
                  RepResult rep;
                  rep.items = query_iters;
                  rep.metrics["pin_blocked_ms_per_query"] = blocked * 1e3 / query_iters;
                  return rep;
                });

    auto prepared = ring.Prepare(plan_text);
    DCY_CHECK_OK(prepared.status());
    harness.Run("query_prepared/" + std::to_string(ring_rows),
                Params(ring_rows, query_iters), [&] {
                  double blocked = 0.0;
                  for (int i = 0; i < query_iters; ++i) {
                    auto r = warm->Execute(*prepared);
                    DCY_CHECK_OK(r.status());
                    blocked += r->timing.pin_blocked_seconds;
                  }
                  RepResult rep;
                  rep.items = query_iters;
                  rep.metrics["pin_blocked_ms_per_query"] = blocked * 1e3 / query_iters;
                  return rep;
                });

    const int64_t pinned_sessions = flags.GetInt("sessions", 0);
    std::vector<size_t> session_axis;
    if (pinned_sessions > 0) {
      session_axis.push_back(static_cast<size_t>(pinned_sessions));
    } else {
      session_axis = {1, 4, 16};
    }
    for (size_t s : session_axis) {
      harness.Run(
          "concurrent_sessions/" + std::to_string(s),
          {{"sessions", std::to_string(s)}, {"iters", std::to_string(query_iters)}},
          [&] {
            std::vector<std::thread> clients;
            std::atomic<int> failures{0};
            for (size_t k = 0; k < s; ++k) {
              clients.emplace_back([&, k] {
                auto session = ring.OpenSession(k % ring.num_nodes());
                if (!session.ok()) {
                  ++failures;
                  return;
                }
                for (int i = 0; i < query_iters; ++i) {
                  if (!session->Execute(*prepared).ok()) ++failures;
                }
              });
            }
            for (auto& t : clients) t.join();
            DCY_CHECK(failures.load() == 0) << "concurrent sessions failed";
            uint32_t peak_running = 0, peak_queued = 0;
            for (core::NodeId n = 0; n < ring.num_nodes(); ++n) {
              const auto m = ring.NodeAdmissionMetrics(n);
              peak_running = std::max(peak_running, m.peak_running);
              peak_queued = std::max(peak_queued, m.peak_queued);
            }
            RepResult rep;
            rep.items = static_cast<double>(s) * query_iters;
            rep.metrics["peak_running"] = peak_running;
            rep.metrics["peak_queued"] = peak_queued;
            return rep;
          });
    }
  }

  // Wire-compression accounting over representative fragments (string-heavy,
  // sorted-int, random-int), mirroring the ring-level `bandwidth` row of
  // bench_table4_tpch. No ring hops here, so bytes/hop is bytes/frame.
  {
    const size_t n = size_t{1} << 16;
    std::vector<BatPtr> frags;
    {
      Rng rng(19);
      ColumnBuilder sb(ValType::kStr);
      char buf[16];
      for (size_t i = 0; i < n; ++i) {
        std::snprintf(buf, sizeof(buf), "grp-%04d",
                      static_cast<int>(rng.UniformU64(0, 63)));
        sb.AppendString(buf);
      }
      frags.push_back(Bat::MakeColumn(sb.Finish()));
      std::vector<int64_t> sorted(n);
      int64_t acc = 1'000'000;
      for (auto& x : sorted) {
        acc += static_cast<int64_t>(rng.UniformU64(0, 7));
        x = acc;
      }
      frags.push_back(Bat::MakeColumn(MakeLngColumn(std::move(sorted))));
      frags.back()->tail()->IsSorted();  // memoize: the FOR codec trigger
      frags.push_back(RandomIntBat(n, 1 << 30, 20));
    }
    CodecStats total;
    for (const BatPtr& f : frags) {
      const FrameEncoder e(*f);
      total.raw_bytes += e.stats().raw_bytes;
      total.wire_bytes += e.stats().wire_bytes;
      total.dict_columns += e.stats().dict_columns;
      total.for_columns += e.stats().for_columns;
      total.plain_columns += e.stats().plain_columns;
    }
    harness.Run("bandwidth",
                {{"n", std::to_string(n)},
                 {"compression", compression ? "1" : "0"}},
                [&] {
                  RepResult rep;
                  rep.items = static_cast<double>(frags.size());
                  rep.metrics["frames"] = static_cast<double>(frags.size());
                  rep.metrics["raw_bytes"] = static_cast<double>(total.raw_bytes);
                  rep.metrics["wire_bytes"] = static_cast<double>(total.wire_bytes);
                  rep.metrics["bytes_per_hop"] =
                      static_cast<double>(total.wire_bytes) /
                      static_cast<double>(frags.size());
                  rep.metrics["encoded_vs_raw_bytes"] =
                      total.raw_bytes ? static_cast<double>(total.wire_bytes) /
                                            static_cast<double>(total.raw_bytes)
                                      : 1.0;
                  rep.metrics["dict_columns"] = static_cast<double>(total.dict_columns);
                  rep.metrics["for_columns"] = static_cast<double>(total.for_columns);
                  rep.metrics["plain_columns"] =
                      static_cast<double>(total.plain_columns);
                  rep.metrics["compression"] = compression ? 1.0 : 0.0;
                  return rep;
                });
  }

  // Ring hot path: encode + decode round trip of a column fragment, with a
  // reused frame (the pooled-buffer pattern of runtime/ring_cluster).
  for (size_t n : {size_t{1} << 12, size_t{1} << 16, size_t{1} << 20}) {
    auto b = RandomIntBat(n, 1 << 30, 9);
    std::string frame;
    harness.Run("serialize_roundtrip/" + std::to_string(n), Params(n, iters), [&] {
      uint64_t bytes = 0;
      for (int i = 0; i < iters; ++i) {
        SerializeInto(*b, &frame);
        auto restored = Deserialize(frame);
        bytes += frame.size();
      }
      RepResult rep;
      rep.items = static_cast<double>(n) * iters;
      rep.metrics["frame_bytes"] = static_cast<double>(bytes) / iters;
      return rep;
    });
  }

  return harness.Finish();
}
