// Micro-benchmarks of the BAT engine operators (M1): select / hash join /
// merge join / sort / group-aggregate throughput.
#include <benchmark/benchmark.h>

#include "bat/operators.h"
#include "common/random.h"

namespace {

using namespace dcy;       // NOLINT
using namespace dcy::bat;  // NOLINT

BatPtr RandomIntBat(size_t n, int32_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng.UniformInt(0, domain));
  return Bat::MakeColumn(MakeIntColumn(std::move(v)));
}

void BM_SelectRange(benchmark::State& state) {
  auto b = RandomIntBat(static_cast<size_t>(state.range(0)), 1000, 1);
  for (auto _ : state) {
    auto r = SelectRange(b, Value::MakeInt(100), Value::MakeInt(300));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectRange)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto l = RandomIntBat(n, static_cast<int32_t>(n / 4), 2);
  auto r = Reverse(RandomIntBat(n / 4, static_cast<int32_t>(n / 4), 3));
  for (auto _ : state) {
    auto out = Join(l, r);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(1 << 12)->Arg(1 << 16);

void BM_MergeJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<int32_t> lk(n), rk(n / 4);
  for (auto& x : lk) x = static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(n)));
  for (auto& x : rk) x = static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(n)));
  std::sort(lk.begin(), lk.end());
  std::sort(rk.begin(), rk.end());
  Bat::Properties lp;
  lp.tsorted = true;
  lp.hsorted = true;
  auto l = std::make_shared<Bat>(MakeDenseOid(0, n), MakeIntColumn(std::move(lk)), lp);
  Bat::Properties rp;
  rp.hsorted = true;
  auto r = std::make_shared<Bat>(MakeIntColumn(std::move(rk)), MakeDenseOid(0, n / 4), rp);
  for (auto _ : state) {
    auto out = Join(BatPtr(l), BatPtr(r));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeJoin)->Arg(1 << 12)->Arg(1 << 16);

void BM_Sort(benchmark::State& state) {
  auto b = RandomIntBat(static_cast<size_t>(state.range(0)), 1 << 30, 5);
  for (auto _ : state) {
    auto r = Sort(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(1 << 12)->Arg(1 << 16);

void BM_GroupAggregate(benchmark::State& state) {
  auto b = RandomIntBat(static_cast<size_t>(state.range(0)), 64, 6);
  for (auto _ : state) {
    auto gids = GroupId(b);
    auto sums = SumPerGroup(b, *gids, 65);
    benchmark::DoNotOptimize(sums);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupAggregate)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
