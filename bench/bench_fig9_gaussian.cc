// Reproduces paper Figure 9 (§5.3 "Non-uniform Workloads"): Gaussian data
// access centred on BAT id 500 (sigma 50).
//   (a) number of touches and number of requests per BAT id,
//   (b) number of loads per BAT id.
//
// Expected shape (paper): the in-vogue BATs (~350-600) collect hundreds of
// touches but *few* loads and *few* requests — they stay hot, so requests
// linger registered instead of being re-sent, while "standard" BATs at the
// bell's shoulders cycle in and out (high load counts).
#include <cstdio>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("fig9_gaussian", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.2);
  const int bucket = static_cast<int>(flags.GetInt("bucket", 10));

  std::printf("# Figure 9 -- Gaussian workload, access ~ N(500*scale, (50*scale)^2), "
              "scale=%.2f\n", scale);

  GaussianExperimentOptions opts;
  opts.scale = scale;
  ExperimentResult r = bench::RunExperimentCase(
      harness, "gaussian", {{"scale", bench::Fmt("%.2f", scale)}},
      [&] { return RunGaussianExperiment(opts); });

  const auto& touches = r.collector->touches();
  const auto& requests = r.collector->requests();
  const auto& loads = r.collector->loads();

  std::printf("\n## Fig 9a/9b: per-BAT counters, bucketed by %d ids (TSV)\n", bucket);
  std::printf("bat_id\ttouches\trequests\tloads\n");
  for (size_t b0 = 0; b0 < touches.size(); b0 += bucket) {
    uint64_t t = 0, q = 0, l = 0;
    for (size_t b = b0; b < std::min(touches.size(), b0 + bucket); ++b) {
      t += touches[b];
      q += requests[b];
      l += loads[b];
    }
    std::printf("%zu\t%llu\t%llu\t%llu\n", b0, static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(q), static_cast<unsigned long long>(l));
  }

  // The paper's three populations, scaled: in-vogue ids within 1.5 sigma of
  // the mean, standard within 1.5-3 sigma, unpopular beyond.
  const double mean = 500 * scale, sigma = 50 * scale;
  uint64_t iv_t = 0, iv_q = 0, iv_l = 0, st_t = 0, st_q = 0, st_l = 0;
  uint32_t iv_n = 0, st_n = 0;
  for (size_t b = 0; b < touches.size(); ++b) {
    const double d = std::abs(static_cast<double>(b) - mean) / sigma;
    if (d <= 1.5) {
      ++iv_n; iv_t += touches[b]; iv_q += requests[b]; iv_l += loads[b];
    } else if (d <= 3.0) {
      ++st_n; st_t += touches[b]; st_q += requests[b]; st_l += loads[b];
    }
  }
  std::printf("\n## Population summary (per-BAT averages)\n");
  std::printf("group\tbats\ttouches\trequests\tloads\n");
  if (iv_n > 0) {
    std::printf("in-vogue\t%u\t%.1f\t%.1f\t%.1f\n", iv_n, 1.0 * iv_t / iv_n,
                1.0 * iv_q / iv_n, 1.0 * iv_l / iv_n);
  }
  if (st_n > 0) {
    std::printf("standard\t%u\t%.1f\t%.1f\t%.1f\n", st_n, 1.0 * st_t / st_n,
                1.0 * st_q / st_n, 1.0 * st_l / st_n);
  }
  std::printf("\nfinished=%llu/%llu drained=%d\n",
              static_cast<unsigned long long>(r.finished),
              static_cast<unsigned long long>(r.registered), r.drained ? 1 : 0);
  return harness.Finish();
}
