#include "bench/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/stats.h"

namespace dcy::bench {

namespace {

double NowNs() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

/// Formats a duration in ns with an adaptive unit so micro and simulation
/// benches both read naturally in the summary table.
std::string FormatNs(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  }
  return buf;
}

std::string FormatNumber(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

double ExactPercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::min(100.0, std::max(0.0, p));
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Harness::Harness(std::string name, int argc, char** argv, int default_repeats,
                 int default_warmup)
    : name_(std::move(name)), repeats_(default_repeats), warmup_(default_warmup) {
  // Accept both --key=value and --key value for the harness's own flags so
  // the CI smoke invocation (`--repeat 1 --json`) works verbatim; other
  // flags stay untouched for the bench's dcy::Flags.
  auto value_of = [&](int i, const char* key, std::string* out) {
    const std::string arg = argv[i];
    const std::string prefix = std::string("--") + key;
    if (arg.rfind(prefix + "=", 0) == 0) {
      *out = arg.substr(prefix.size() + 1);
      return true;
    }
    if (arg == prefix) {
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        *out = argv[i + 1];
      } else {
        out->clear();
      }
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (value_of(i, "repeat", &v) || value_of(i, "repeats", &v)) {
      if (!v.empty()) repeats_ = std::max(1, static_cast<int>(std::strtol(v.c_str(), nullptr, 10)));
    } else if (value_of(i, "warmup", &v)) {
      if (!v.empty()) warmup_ = std::max(0, static_cast<int>(std::strtol(v.c_str(), nullptr, 10)));
    } else if (value_of(i, "json", &v)) {
      json_path_ = v.empty() ? "BENCH_" + name_ + ".json" : v;
    } else if (std::string(argv[i]) == "--quiet") {
      quiet_ = true;
    }
  }
}

CaseResult Harness::Run(const std::string& case_name,
                        const std::map<std::string, std::string>& params,
                        const std::function<RepResult()>& fn) {
  for (int i = 0; i < warmup_; ++i) fn();

  CaseResult cr;
  cr.name = case_name;
  cr.params = params;
  cr.warmup = warmup_;
  cr.repeats = repeats_;

  RunningStat time_stat;
  std::vector<double> rep_ns;
  rep_ns.reserve(static_cast<size_t>(repeats_));
  double total_ns = 0.0;
  for (int i = 0; i < repeats_; ++i) {
    const double t0 = NowNs();
    RepResult rep = fn();
    const double elapsed = NowNs() - t0;
    rep_ns.push_back(elapsed);
    time_stat.Add(elapsed);
    total_ns += elapsed;
    cr.total_items += rep.items;
    for (const auto& [k, v] : rep.metrics) cr.metrics[k] += v;
  }
  for (auto& [k, v] : cr.metrics) v /= static_cast<double>(repeats_);
  cr.p50_ns = ExactPercentile(rep_ns, 50.0);
  cr.p95_ns = ExactPercentile(rep_ns, 95.0);
  cr.mean_ns = time_stat.mean();
  cr.min_ns = time_stat.min();
  cr.max_ns = time_stat.max();
  cr.throughput = total_ns > 0 ? cr.total_items / (total_ns / 1e9) : 0.0;

  if (!quiet_) {
    if (!header_printed_) {
      std::fprintf(stderr, "## %-38s %5s %12s %12s %14s\n", ("bench " + name_).c_str(),
                   "reps", "p50", "p95", "items/s");
      header_printed_ = true;
    }
    std::fprintf(stderr, "## %-38s %5d %12s %12s %14.1f\n", case_name.c_str(), repeats_,
                 FormatNs(cr.p50_ns).c_str(), FormatNs(cr.p95_ns).c_str(), cr.throughput);
  }

  cases_.push_back(cr);
  return cr;
}

int Harness::Finish() {
  if (json_path_.empty()) return 0;
  std::ofstream out(json_path_);
  if (!out) {
    std::fprintf(stderr, "bench %s: cannot open %s for writing\n", name_.c_str(),
                 json_path_.c_str());
    return 1;
  }
  out << ToJson(name_, repeats_, warmup_, cases_);
  out.close();
  if (!out) {
    std::fprintf(stderr, "bench %s: failed writing %s\n", name_.c_str(), json_path_.c_str());
    return 1;
  }
  if (!quiet_) std::fprintf(stderr, "## wrote %s (%zu cases)\n", json_path_.c_str(), cases_.size());
  return 0;
}

std::string Harness::ToJson(const std::string& bench_name, int repeats, int warmup,
                            const std::vector<CaseResult>& cases) {
  std::string j = "{\n";
  j += "  \"benchmark\": " + JsonQuote(bench_name) + ",\n";
  j += "  \"schema\": \"dcy-bench-v1\",\n";
  j += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  j += "  \"warmup\": " + std::to_string(warmup) + ",\n";
  j += "  \"cases\": [";
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"name\": " + JsonQuote(c.name) + ", \"params\": {";
    bool first = true;
    for (const auto& [k, v] : c.params) {
      if (!first) j += ", ";
      first = false;
      j += JsonQuote(k) + ": " + JsonQuote(v);
    }
    j += "}, \"repeats\": " + std::to_string(c.repeats);
    j += ", \"warmup\": " + std::to_string(c.warmup);
    j += ", \"p50_ns\": " + FormatNumber(c.p50_ns);
    j += ", \"p95_ns\": " + FormatNumber(c.p95_ns);
    j += ", \"mean_ns\": " + FormatNumber(c.mean_ns);
    j += ", \"min_ns\": " + FormatNumber(c.min_ns);
    j += ", \"max_ns\": " + FormatNumber(c.max_ns);
    j += ", \"total_items\": " + FormatNumber(c.total_items);
    j += ", \"throughput\": " + FormatNumber(c.throughput);
    j += ", \"metrics\": {";
    first = true;
    for (const auto& [k, v] : c.metrics) {
      if (!first) j += ", ";
      first = false;
      j += JsonQuote(k) + ": " + FormatNumber(v);
    }
    j += "}}";
  }
  j += cases.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

// ---------------------------------------------------------------------------
// JSON

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue Parse(bool* ok) {
    JsonValue v = ParseValue();
    SkipWs();
    const bool good = !failed_ && pos_ == s_.size();
    if (ok != nullptr) *ok = good;
    return good ? v : JsonValue::MakeNull();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Fail();
    const char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue v;
      v.type_ = JsonValue::Type::kBool;
      v.bool_ = true;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue v;
      v.type_ = JsonValue::Type::kBool;
      return v;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue::MakeNull();
    }
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return v;
    while (!failed_) {
      SkipWs();
      JsonValue key = ParseString();
      if (failed_ || !Consume(':')) return Fail();
      v.object_[key.string_] = ParseValue();
      if (Consume('}')) return v;
      if (!Consume(',')) return Fail();
    }
    return Fail();
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    if (Consume(']')) return v;
    while (!failed_) {
      v.array_.push_back(ParseValue());
      if (Consume(']')) return v;
      if (!Consume(',')) return Fail();
    }
    return Fail();
  }

  JsonValue ParseString() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return Fail();
    ++pos_;
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {  // JsonQuote emits \u00XX for control chars
            if (pos_ + 4 > s_.size()) return Fail();
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail();
            }
            if (code < 0x80) {
              c = static_cast<char>(code);
            } else if (code < 0x800) {  // 2-byte UTF-8
              v.string_ += static_cast<char>(0xC0 | (code >> 6));
              c = static_cast<char>(0x80 | (code & 0x3F));
            } else {  // 3-byte UTF-8 (no surrogate-pair support)
              v.string_ += static_cast<char>(0xE0 | (code >> 12));
              v.string_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              c = static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return Fail();
        }
      }
      v.string_ += c;
    }
    if (pos_ >= s_.size()) return Fail();
    ++pos_;  // closing quote
    return v;
  }

  JsonValue ParseNumber() {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) return Fail();
    pos_ += static_cast<size_t>(end - start);
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  JsonValue Fail() {
    failed_ = true;
    return JsonValue::MakeNull();
  }

  const std::string& s_;
  size_t pos_ = 0;
  bool failed_ = false;
};

const JsonValue& JsonValue::operator[](const std::string& key) const {
  static const JsonValue kNull;
  if (type_ != Type::kObject) return kNull;
  auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

JsonValue JsonValue::Parse(const std::string& text, bool* ok) {
  return JsonParser(text).Parse(ok);
}

bool CasesFromJson(const JsonValue& doc, std::vector<CaseResult>* out) {
  out->clear();
  if (doc.type() != JsonValue::Type::kObject ||
      doc["schema"].type() != JsonValue::Type::kString ||
      doc["schema"].str() != "dcy-bench-v1" ||
      doc["cases"].type() != JsonValue::Type::kArray) {
    return false;
  }
  for (const JsonValue& jc : doc["cases"].array()) {
    if (jc.type() != JsonValue::Type::kObject ||
        jc["name"].type() != JsonValue::Type::kString ||
        jc["p50_ns"].type() != JsonValue::Type::kNumber ||
        jc["p95_ns"].type() != JsonValue::Type::kNumber ||
        jc["throughput"].type() != JsonValue::Type::kNumber) {
      return false;
    }
    CaseResult c;
    c.name = jc["name"].str();
    c.repeats = static_cast<int>(jc["repeats"].number());
    c.warmup = static_cast<int>(jc["warmup"].number());
    c.p50_ns = jc["p50_ns"].number();
    c.p95_ns = jc["p95_ns"].number();
    c.mean_ns = jc["mean_ns"].number();
    c.min_ns = jc["min_ns"].number();
    c.max_ns = jc["max_ns"].number();
    c.total_items = jc["total_items"].number();
    c.throughput = jc["throughput"].number();
    for (const auto& [k, v] : jc["params"].object()) c.params[k] = v.str();
    for (const auto& [k, v] : jc["metrics"].object()) c.metrics[k] = v.number();
    out->push_back(std::move(c));
  }
  return true;
}

}  // namespace dcy::bench
