// Reproduces paper Figure 1: CPU cost of high-speed transfers under three
// network paths — "everything on CPU" (legacy kernel TCP: two copies +
// context switches), "network stack on NIC" (one remaining copy), and RDMA
// (zero copy, direct data placement).
//
// The paper's point is the *ranking*: only RDMA removes the per-byte CPU
// work. google-benchmark's CPU time plus the channel's bytes_copied counter
// reproduce exactly that.
#include <benchmark/benchmark.h>

#include "rdma/channel.h"

namespace {

using dcy::rdma::Channel;
using dcy::rdma::MakeBuffer;
using dcy::rdma::TransferMode;

void TransferBench(benchmark::State& state, TransferMode mode) {
  const size_t payload_bytes = static_cast<size_t>(state.range(0));
  Channel::Options opts;
  opts.mode = mode;
  opts.capacity_bytes = 1ULL << 32;
  Channel channel(opts);
  const auto payload = MakeBuffer(std::string(payload_bytes, 'x'));

  for (auto _ : state) {
    channel.Send(1, payload);
    auto m = channel.TryReceive();
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload_bytes));
  state.counters["copied_bytes_per_msg"] = benchmark::Counter(
      static_cast<double>(channel.stats().bytes_copied.load()) /
      static_cast<double>(state.iterations()));
  state.counters["ctx_switches_per_msg"] = benchmark::Counter(
      static_cast<double>(channel.stats().yields.load()) /
      static_cast<double>(state.iterations()));
}

void BM_LegacyTcp(benchmark::State& state) { TransferBench(state, TransferMode::kLegacy); }
void BM_NicOffload(benchmark::State& state) {
  TransferBench(state, TransferMode::kNicOffload);
}
void BM_Rdma(benchmark::State& state) { TransferBench(state, TransferMode::kZeroCopy); }

BENCHMARK(BM_LegacyTcp)->Arg(1 << 20)->Arg(8 << 20)->Arg(32 << 20);
BENCHMARK(BM_NicOffload)->Arg(1 << 20)->Arg(8 << 20)->Arg(32 << 20);
BENCHMARK(BM_Rdma)->Arg(1 << 20)->Arg(8 << 20)->Arg(32 << 20);

}  // namespace

BENCHMARK_MAIN();
