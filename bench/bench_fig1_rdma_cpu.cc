// Reproduces paper Figure 1: CPU cost of high-speed transfers under three
// network paths — "everything on CPU" (legacy kernel TCP: two copies +
// context switches), "network stack on NIC" (one remaining copy), and RDMA
// (zero copy, direct data placement).
//
// The paper's point is the *ranking*: only RDMA removes the per-byte CPU
// work. Wall time per message plus the channel's bytes_copied counter
// reproduce exactly that.
#include <cstdint>
#include <string>

#include "bench/harness.h"
#include "common/flags.h"
#include "rdma/channel.h"

namespace {

using dcy::bench::RepResult;
using dcy::rdma::Channel;
using dcy::rdma::MakeBuffer;
using dcy::rdma::TransferMode;

constexpr struct {
  TransferMode mode;
  const char* name;
} kModes[] = {
    {TransferMode::kLegacy, "legacy_tcp"},
    {TransferMode::kNicOffload, "nic_offload"},
    {TransferMode::kZeroCopy, "rdma"},
};

}  // namespace

int main(int argc, char** argv) {
  dcy::Flags flags(argc, argv);
  dcy::bench::Harness harness("fig1_rdma_cpu", argc, argv, /*default_repeats=*/5,
                              /*default_warmup=*/1);
  const int iters = static_cast<int>(flags.GetInt("iters", 32));

  for (const auto& m : kModes) {
    for (size_t payload_mib : {1, 8, 32}) {
      const size_t payload_bytes = payload_mib << 20;
      const auto payload = MakeBuffer(std::string(payload_bytes, 'x'));
      harness.Run(
          std::string(m.name) + "/" + std::to_string(payload_mib) + "MiB",
          {{"mode", m.name},
           {"payload_bytes", std::to_string(payload_bytes)},
           {"iters", std::to_string(iters)}},
          [&] {
            Channel::Options opts;
            opts.mode = m.mode;
            opts.capacity_bytes = 1ULL << 32;
            Channel channel(opts);
            for (int i = 0; i < iters; ++i) {
              channel.Send(1, payload);
              channel.TryReceive();
            }
            RepResult rep;
            rep.items = iters;
            const double n = iters;
            rep.metrics["bytes_per_msg"] = static_cast<double>(payload_bytes);
            rep.metrics["copied_bytes_per_msg"] =
                static_cast<double>(channel.stats().bytes_copied.load()) / n;
            rep.metrics["ctx_switches_per_msg"] =
                static_cast<double>(channel.stats().yields.load()) / n;
            return rep;
          });
    }
  }
  return harness.Finish();
}
