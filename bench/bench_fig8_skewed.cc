// Reproduces paper Figure 8 (§5.2 "Skewed Workloads"): four sub-workloads
// SW1..SW4 (Table 3) with disjoint hot sets under the adaptive LOIT ladder.
//   (a) ring load per disjoint hot set DH_i over time,
//   (b) completed queries per sub-workload over time.
#include <cstdio>

#include "bench/harness.h"
#include "bench/simdc_metrics.h"
#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::Harness harness("fig8_skewed", argc, argv, /*default_repeats=*/1,
                         /*default_warmup=*/0);
  const double scale = flags.GetDouble("scale", 0.2);

  std::printf("# Figure 8 -- skewed workloads SW1..SW4 (Table 3), scale=%.2f\n", scale);
  std::printf("# SW1: skew 3, 0-30 s, 200 q/s | SW2: skew 5, 15-45 s, 300 q/s\n");
  std::printf("# SW3: skew 7, 37.5-67.5 s, 400 q/s | SW4: skew 9, 67.5-97.5 s, 500 q/s\n");
  std::printf("# adaptive LOIT levels {0.1, 0.6, 1.1}, watermarks 80%%/40%%\n");

  SkewedExperimentOptions opts;
  opts.scale = scale;
  ExperimentResult r = bench::RunExperimentCase(
      harness, "skewed_adaptive", {{"scale", bench::Fmt("%.2f", scale)}},
      [&] { return RunSkewedExperiment(opts); });

  const double horizon = ToSeconds(r.sim_end);
  const auto& ring = r.collector->ring_series().all();
  const auto& queries = r.collector->query_series().all();

  std::printf("\n## Fig 8a: ring load per hot set in bytes (TSV)\n");
  std::printf("time_s\ttotal\tDH1\tDH2\tDH3\tDH4\tshared\n");
  for (double t = 0; t <= horizon + 1e-9; t += 2.0) {
    std::printf("%.0f\t%.0f", t, ring.at("total_bytes").At(t));
    for (int tag = 1; tag <= 4; ++tag) {
      std::printf("\t%.0f", ring.at("tag" + std::to_string(tag) + "_bytes").At(t));
    }
    std::printf("\t%.0f\n", ring.at("tag0_bytes").At(t));
  }

  std::printf("\n## Fig 8b: completed queries per sub-workload (TSV, cumulative)\n");
  std::printf("time_s\tSW1\tSW2\tSW3\tSW4\n");
  for (double t = 0; t <= horizon + 1e-9; t += 2.0) {
    std::printf("%.0f", t);
    for (int tag = 1; tag <= 4; ++tag) {
      std::printf("\t%.0f", queries.at("tag" + std::to_string(tag) + "_finished").At(t));
    }
    std::printf("\n");
  }

  std::printf("\n## Summary\n");
  std::printf("registered=%llu finished=%llu failed=%llu last_finish=%.1fs drained=%d\n",
              static_cast<unsigned long long>(r.registered),
              static_cast<unsigned long long>(r.finished),
              static_cast<unsigned long long>(r.failed), ToSeconds(r.last_finish),
              r.drained ? 1 : 0);
  std::printf("loads=%llu unloads=%llu pending_tags=%llu\n",
              static_cast<unsigned long long>(r.collector->total_loads()),
              static_cast<unsigned long long>(r.collector->total_unloads()),
              static_cast<unsigned long long>(r.collector->total_pending_tags()));
  return harness.Finish();
}
