// Example: TPC-H trace-driven scale-out (paper §5.4, Table 4).
//
// Generates synthetic TPC-H SF-5 traces (22 templates, calibrated operator
// times, partitioned columns as ring fragments) and replays them on rings
// of growing size, reporting the paper's four columns.
//
// Run: ./tpch_ring [--queries_per_node=200] [--max_nodes=4]
#include <cstdio>

#include "common/flags.h"
#include "simdc/experiments.h"
#include "workload/tpch.h"

using namespace dcy;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t queries = static_cast<uint32_t>(flags.GetInt("queries_per_node", 200));
  const uint32_t max_nodes = static_cast<uint32_t>(flags.GetInt("max_nodes", 4));

  std::printf("TPC-H SF-5 on the Data Cyclotron (paper §5.4), %u queries/node @ 8 q/s\n\n",
              queries);

  // Show what the trace generator builds.
  workload::TpchOptions topts;
  topts.queries_per_node = queries;
  auto wl = workload::GenerateTpchWorkload(topts, 2);
  std::printf("dataset: %u fragments from %zu logical columns/indexes, %.2f GB total\n",
              wl.dataset.num_bats(), workload::TpchColumns().size(),
              static_cast<double>(wl.dataset.total_bytes()) / 1e9);
  std::printf("mean useful CPU per query: %.2f core-seconds (target %.2f)\n\n",
              wl.useful_cpu_seconds / (2.0 * queries), topts.target_mean_cpu_sec);

  std::printf("%-8s %9s %12s %16s %7s\n", "#nodes", "exec(sec)", "throughput",
              "throughP/node", "CPU%");
  {
    simdc::TpchExperimentOptions opts;
    opts.num_nodes = 1;
    opts.tpch.queries_per_node = queries;
    opts.tpch.cpu_inflation = 420.0 / 317.0;  // the paper's MonetDB row
    std::printf("%s\n", simdc::FormatTpchRow(simdc::RunTpchExperiment(opts)).c_str());
  }
  for (uint32_t nodes = 1; nodes <= max_nodes; ++nodes) {
    simdc::TpchExperimentOptions opts;
    opts.num_nodes = nodes;
    opts.tpch.queries_per_node = queries;
    std::printf("%s\n", simdc::FormatTpchRow(simdc::RunTpchExperiment(opts)).c_str());
  }

  std::printf("\nReading: throughput scales ~linearly with nodes at near-constant\n"
              "throughput/node, while CPU utilization decays slowly as ring rotation\n"
              "latency grows — the paper's Table 4 shape.\n");
  return 0;
}
