// Example: TPC-H trace-driven scale-out (paper §5.4, Table 4), plus a live
// multi-session replay of a TPC-H-style aggregation on the real ring.
//
// Part 1 generates synthetic TPC-H SF-5 traces (22 templates, calibrated
// operator times, partitioned columns as ring fragments) and replays them on
// simulated rings of growing size, reporting the paper's four columns.
//
// Part 2 exercises the session-based query API end to end: TPC-H-flavoured
// lineitem columns are spread over a live 3-node ring, one revenue
// aggregation plan is prepared once (parse + DcOptimize), and S concurrent
// sessions submit it asynchronously under per-node admission control.
//
// Run: ./tpch_ring [--queries_per_node=200] [--max_nodes=4]
//                  [--sessions=4] [--live_queries=8] [--live_rows=65536]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"
#include "simdc/experiments.h"
#include "workload/tpch.h"

using namespace dcy;  // NOLINT

namespace {

constexpr const char* kRevenuePlan = R"(
function user.q_revenue():void;
    X1 := sql.bind("sys","lineitem","l_extendedprice",0);
    X2 := sql.bind("sys","lineitem","l_quantity",0);
    X3 := batcalc.mul(X1, X2);
    X4 := aggr.sum(X3);
end q_revenue;
)";

int RunLiveSessions(uint32_t sessions, uint32_t queries_per_session, size_t rows) {
  runtime::RingCluster::Options opts;
  opts.num_nodes = 3;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  runtime::RingCluster ring(opts);

  Rng rng(42);
  std::vector<double> price(rows), quantity(rows);
  for (auto& p : price) p = rng.UniformDouble(1.0, 1000.0);
  for (auto& q : quantity) q = rng.UniformDouble(1.0, 50.0);
  DCY_CHECK_OK(ring.LoadBat(1, "sys.lineitem.l_extendedprice",
                            bat::Bat::MakeColumn(bat::MakeDblColumn(std::move(price)))));
  DCY_CHECK_OK(ring.LoadBat(2, "sys.lineitem.l_quantity",
                            bat::Bat::MakeColumn(bat::MakeDblColumn(std::move(quantity)))));
  ring.Start();

  // One compile serves every session and every execution.
  auto prepared = ring.Prepare(kRevenuePlan);
  DCY_CHECK_OK(prepared.status());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  std::atomic<double> pin_blocked_total{0.0};
  for (uint32_t s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      auto session = ring.OpenSession(s % ring.num_nodes());
      if (!session.ok()) {
        ++failures;
        return;
      }
      double blocked = 0.0;
      for (uint32_t q = 0; q < queries_per_session; ++q) {
        auto result = session->Execute(*prepared);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        blocked += result->timing.pin_blocked_seconds;
      }
      double expected = pin_blocked_total.load();
      while (!pin_blocked_total.compare_exchange_weak(expected, expected + blocked)) {
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const uint32_t total = sessions * queries_per_session;
  std::printf("%u sessions x %u queries: %u ok, %.2f q/s, %.1f ms ring-blocked "
              "per query, %.1f KiB moved\n",
              sessions, queries_per_session, total - failures.load(),
              static_cast<double>(total) / wall,
              pin_blocked_total.load() * 1e3 / total,
              static_cast<double>(ring.TotalDataBytesMoved()) / 1024.0);
  for (core::NodeId n = 0; n < ring.num_nodes(); ++n) {
    const auto m = ring.NodeAdmissionMetrics(n);
    std::printf("  node %u admission: %llu submitted, peak %u running / %u queued\n", n,
                static_cast<unsigned long long>(m.submitted), m.peak_running,
                m.peak_queued);
  }
  const auto cache = ring.plan_cache_stats();
  std::printf("  plan cache: %llu compilations, %llu hits\n",
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.hits));
  return failures.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t queries = static_cast<uint32_t>(flags.GetInt("queries_per_node", 200));
  const uint32_t max_nodes = static_cast<uint32_t>(flags.GetInt("max_nodes", 4));

  std::printf("TPC-H SF-5 on the Data Cyclotron (paper §5.4), %u queries/node @ 8 q/s\n\n",
              queries);

  // Show what the trace generator builds.
  workload::TpchOptions topts;
  topts.queries_per_node = queries;
  auto wl = workload::GenerateTpchWorkload(topts, 2);
  std::printf("dataset: %u fragments from %zu logical columns/indexes, %.2f GB total\n",
              wl.dataset.num_bats(), workload::TpchColumns().size(),
              static_cast<double>(wl.dataset.total_bytes()) / 1e9);
  std::printf("mean useful CPU per query: %.2f core-seconds (target %.2f)\n\n",
              wl.useful_cpu_seconds / (2.0 * queries), topts.target_mean_cpu_sec);

  std::printf("%-8s %9s %12s %16s %7s\n", "#nodes", "exec(sec)", "throughput",
              "throughP/node", "CPU%");
  {
    simdc::TpchExperimentOptions opts;
    opts.num_nodes = 1;
    opts.tpch.queries_per_node = queries;
    opts.tpch.cpu_inflation = 420.0 / 317.0;  // the paper's MonetDB row
    std::printf("%s\n", simdc::FormatTpchRow(simdc::RunTpchExperiment(opts)).c_str());
  }
  for (uint32_t nodes = 1; nodes <= max_nodes; ++nodes) {
    simdc::TpchExperimentOptions opts;
    opts.num_nodes = nodes;
    opts.tpch.queries_per_node = queries;
    std::printf("%s\n", simdc::FormatTpchRow(simdc::RunTpchExperiment(opts)).c_str());
  }

  std::printf("\nReading: throughput scales ~linearly with nodes at near-constant\n"
              "throughput/node, while CPU utilization decays slowly as ring rotation\n"
              "latency grows — the paper's Table 4 shape.\n");

  std::printf("\n== Live ring: prepared TPC-H revenue plan over concurrent sessions ==\n");
  const uint32_t sessions = static_cast<uint32_t>(flags.GetInt("sessions", 4));
  const uint32_t live_queries = static_cast<uint32_t>(flags.GetInt("live_queries", 8));
  const size_t live_rows = static_cast<size_t>(flags.GetInt("live_rows", 64 * 1024));
  return RunLiveSessions(sessions, live_queries, live_rows);
}
