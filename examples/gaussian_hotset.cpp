// Example: non-uniform access and hot-set management (paper §5.3).
//
// Runs the Gaussian workload (access ~ N(500, 50^2) over 1000 fragments,
// scaled) and prints the three BAT populations the paper identifies:
// in-vogue fragments stay hot (many touches, few loads), standard fragments
// cycle in and out, unpopular ones barely appear.
//
// Run: ./gaussian_hotset [--scale=0.2]
#include <cmath>
#include <cstdio>

#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.2);

  GaussianExperimentOptions opts;
  opts.scale = scale;
  std::printf("Gaussian hot set (paper §5.3): access ~ N(%.0f, %.0f^2), scale %.2f\n\n",
              opts.mean * scale, opts.stddev * scale, scale);
  ExperimentResult r = RunGaussianExperiment(opts);

  const auto& touches = r.collector->touches();
  const auto& requests = r.collector->requests();
  const auto& loads = r.collector->loads();
  const double mean = opts.mean * scale, sigma = opts.stddev * scale;

  struct Group {
    const char* name;
    uint64_t bats = 0, touches = 0, requests = 0, loads = 0;
  } groups[3] = {{"in-vogue (<1.5s)"}, {"standard (1.5-3s)"}, {"unpopular (>3s)"}};

  for (size_t b = 0; b < touches.size(); ++b) {
    const double d = std::abs(static_cast<double>(b) - mean) / sigma;
    Group& g = groups[d <= 1.5 ? 0 : (d <= 3.0 ? 1 : 2)];
    ++g.bats;
    g.touches += touches[b];
    g.requests += requests[b];
    g.loads += loads[b];
  }

  std::printf("%-20s %6s %12s %12s %10s\n", "population", "bats", "touches/bat",
              "requests/bat", "loads/bat");
  for (const Group& g : groups) {
    if (g.bats == 0) continue;
    std::printf("%-20s %6llu %12.1f %12.1f %10.1f\n", g.name,
                static_cast<unsigned long long>(g.bats),
                static_cast<double>(g.touches) / static_cast<double>(g.bats),
                static_cast<double>(g.requests) / static_cast<double>(g.bats),
                static_cast<double>(g.loads) / static_cast<double>(g.bats));
  }

  std::printf("\n%llu/%llu queries finished; mean ring rotation %.2f s\n",
              static_cast<unsigned long long>(r.finished),
              static_cast<unsigned long long>(r.registered),
              r.collector->rotation_sec().mean());
  std::printf("The in-vogue fragments collect touches every pass but re-enter the ring\n"
              "rarely — their persistent S2 request entries absorb new demand, the\n"
              "paper's counterintuitive low request rate for popular data.\n");
  return 0;
}
