// Quickstart: the paper's §3/§4 walk-through end to end on a live ring.
//
// 1. Build a tiny two-table database (sys.t, sys.c) and spread it over a
//    3-node in-process Data Cyclotron ring (RDMA-emulating channels).
// 2. Parse the MAL plan of paper Table 1, show the DcOptimizer rewriting it
//    into paper Table 2 (request/pin/unpin injection).
// 3. Execute the rewritten plan on a node that owns neither table: the
//    fragments are requested, circulate clockwise, and the query picks them
//    up as they flow by.
//
// Run: ./quickstart
#include <cstdio>

#include "bat/operators.h"
#include "mal/program.h"
#include "opt/dc_optimizer.h"
#include "runtime/ring_cluster.h"

using namespace dcy;  // NOLINT

namespace {

constexpr const char* kPlan = R"(
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
)";

}  // namespace

int main() {
  std::printf("== The paper's SQL: select c.t_id from t, c where c.t_id = t.id ==\n\n");

  auto program = mal::ParseProgram(kPlan);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("-- MAL plan as produced by the SQL front-end (paper Table 1):\n%s\n",
              program->ToString().c_str());

  auto rewritten = opt::DcOptimize(*program);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "optimizer error: %s\n", rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("-- After the DcOptimizer (paper Table 2):\n%s\n", rewritten->ToString().c_str());

  // A 3-node ring; the two tables live on nodes 1 and 2.
  runtime::RingCluster::Options opts;
  opts.num_nodes = 3;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  runtime::RingCluster ring(opts);

  DCY_CHECK_OK(ring.LoadBat(1, "sys.t.id", bat::Bat::MakeColumn(bat::MakeIntColumn(
                                               {1, 2, 3, 4}))));
  DCY_CHECK_OK(ring.LoadBat(2, "sys.c.t_id", bat::Bat::MakeColumn(bat::MakeIntColumn(
                                                 {2, 3, 3, 5}))));
  ring.Start();

  std::printf("== Executing on node 0 (owns neither table) ==\n");
  auto outcome = ring.ExecuteMal(0, kPlan, /*optimize=*/true);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", outcome->printed.c_str());
  std::printf("query %llu finished in %.1f ms; ring moved %.1f KiB of BAT payloads\n",
              static_cast<unsigned long long>(outcome->query_id),
              outcome->wall_seconds * 1e3,
              static_cast<double>(ring.TotalDataBytesMoved()) / 1024.0);

  const auto metrics = ring.NodeMetrics(0);
  std::printf("node 0 protocol: %llu requests registered, %llu request messages, "
              "%llu pins (%llu blocked), %llu deliveries\n",
              static_cast<unsigned long long>(metrics.requests_registered),
              static_cast<unsigned long long>(metrics.request_msgs_sent),
              static_cast<unsigned long long>(metrics.pins_total),
              static_cast<unsigned long long>(metrics.pins_blocked),
              static_cast<unsigned long long>(metrics.deliveries));
  return 0;
}
