// Quickstart: the paper's §3/§4 walk-through end to end on a live ring,
// driven through the session-based query API.
//
// 1. Build a tiny two-table database (sys.t, sys.c) and spread it over a
//    3-node in-process Data Cyclotron ring (RDMA-emulating channels).
// 2. Prepare the MAL plan of paper Table 1 once: the cluster parses it and
//    the DcOptimizer rewrites it into paper Table 2 (request/pin/unpin
//    injection); the compiled plan is cached and reusable.
// 3. Open a session on a node that owns neither table, submit the prepared
//    plan asynchronously, and read the typed ResultSet: the fragments are
//    requested, circulate clockwise, and the query picks them up as they
//    flow by.
//
// Run: ./quickstart
#include <cstdio>

#include "bat/operators.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"

using namespace dcy;  // NOLINT

namespace {

constexpr const char* kPlan = R"(
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
)";

}  // namespace

int main() {
  std::printf("== The paper's SQL: select c.t_id from t, c where c.t_id = t.id ==\n\n");

  // A 3-node ring; the two tables live on nodes 1 and 2.
  runtime::RingCluster::Options opts;
  opts.num_nodes = 3;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  runtime::RingCluster ring(opts);

  DCY_CHECK_OK(ring.LoadBat(1, "sys.t.id", bat::Bat::MakeColumn(bat::MakeIntColumn(
                                               {1, 2, 3, 4}))));
  DCY_CHECK_OK(ring.LoadBat(2, "sys.c.t_id", bat::Bat::MakeColumn(bat::MakeIntColumn(
                                                 {2, 3, 3, 5}))));
  ring.Start();

  // Prepare once: parse + DcOptimize are paid here, never per execution.
  auto prepared = ring.Prepare(kPlan);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare error: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("-- MAL plan as submitted (paper Table 1):\n%s\n", kPlan);
  std::printf("-- After the DcOptimizer (paper Table 2):\n%s\n",
              (*prepared)->program().ToString().c_str());

  std::printf("== Executing on node 0 (owns neither table) ==\n");
  auto session = ring.OpenSession(0);
  DCY_CHECK_OK(session.status());

  // Asynchronous submission: Submit returns a handle immediately; Wait()
  // blocks until the fragments have flowed by and the plan finished.
  auto handle = session->Submit(*prepared);
  DCY_CHECK_OK(handle.status());
  auto result = handle->Wait();
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Typed results: named columns with row/span accessors, no text parsing.
  const runtime::ResultSet& rs = result->result;
  for (size_t c = 0; c < rs.num_columns(); ++c) {
    std::printf("%s.%s (%s)\n", rs.column(c).table.c_str(), rs.column(c).name.c_str(),
                rs.column(c).decl_type.c_str());
  }
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    std::printf("  row %zu: %lld\n", r, static_cast<long long>(rs.Int64At(r, 0)));
  }

  std::printf("\nquery %llu finished in %.1f ms (%.1f ms blocked on ring pins, "
              "%.1f ms queued); ring moved %.1f KiB of BAT payloads\n",
              static_cast<unsigned long long>(result->query_id),
              result->timing.exec_seconds * 1e3,
              result->timing.pin_blocked_seconds * 1e3,
              result->timing.queued_seconds * 1e3,
              static_cast<double>(ring.TotalDataBytesMoved()) / 1024.0);

  const auto metrics = ring.NodeMetrics(0);
  std::printf("node 0 protocol: %llu requests registered, %llu request messages, "
              "%llu pins (%llu blocked), %llu deliveries\n",
              static_cast<unsigned long long>(metrics.requests_registered),
              static_cast<unsigned long long>(metrics.request_msgs_sent),
              static_cast<unsigned long long>(metrics.pins_total),
              static_cast<unsigned long long>(metrics.pins_blocked),
              static_cast<unsigned long long>(metrics.deliveries));

  const auto admission = ring.NodeAdmissionMetrics(0);
  std::printf("node 0 admission: %llu submitted, %llu admitted, peak %u running / "
              "%u queued\n",
              static_cast<unsigned long long>(admission.submitted),
              static_cast<unsigned long long>(admission.admitted),
              admission.peak_running, admission.peak_queued);
  return 0;
}
