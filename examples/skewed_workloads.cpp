// Example: self-organization under shifting workloads (paper §5.2).
//
// Replays Table 3's four skewed sub-workloads SW1..SW4 against a simulated
// 10-node ring with the adaptive LOIT ladder, and narrates how the hot set
// in the ring follows the workload: DH1 bytes give way to DH2, resources
// are shared in proportion to the overlap, and the ring refills when SW3
// finds it half empty.
//
// Run: ./skewed_workloads [--scale=0.2]
#include <cstdio>

#include "common/flags.h"
#include "simdc/experiments.h"

using namespace dcy;         // NOLINT
using namespace dcy::simdc;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.2);

  std::printf("Skewed workloads (paper §5.2, Table 3) at scale %.2f\n", scale);
  std::printf("SW1 skew 3 @ 0-30s, SW2 skew 5 @ 15-45s, SW3 skew 7 @ 37.5-67.5s, "
              "SW4 skew 9 @ 67.5-97.5s\n\n");

  SkewedExperimentOptions opts;
  opts.scale = scale;
  ExperimentResult r = RunSkewedExperiment(opts);

  const auto& ring = r.collector->ring_series().all();
  std::printf("%-8s %12s %10s %10s %10s %10s   workload phase\n", "t(s)", "ring_total",
              "DH1", "DH2", "DH3", "DH4");
  for (double t = 0; t <= 110.0; t += 5.0) {
    const char* phase = t < 15    ? "SW1"
                        : t < 30  ? "SW1+SW2"
                        : t < 37.5 ? "SW2"
                        : t < 45  ? "SW2+SW3"
                        : t < 67.5 ? "SW3"
                        : t < 97.5 ? "SW4"
                                   : "drain";
    std::printf("%-8.0f %12.0f %10.0f %10.0f %10.0f %10.0f   %s\n", t,
                ring.at("total_bytes").At(t), ring.at("tag1_bytes").At(t),
                ring.at("tag2_bytes").At(t), ring.at("tag3_bytes").At(t),
                ring.at("tag4_bytes").At(t), phase);
  }

  std::printf("\nOutcome: %llu/%llu queries finished by t=%.1fs "
              "(loads=%llu unloads=%llu)\n",
              static_cast<unsigned long long>(r.finished),
              static_cast<unsigned long long>(r.registered), ToSeconds(r.last_finish),
              static_cast<unsigned long long>(r.collector->total_loads()),
              static_cast<unsigned long long>(r.collector->total_unloads()));
  std::printf("The ring replaced each disjoint hot set as its workload arrived, without\n"
              "any coordinator: owners loaded requested fragments when LOIT admitted them\n"
              "and cooled the previous workload's fragments as their LOI decayed.\n");
  return 0;
}
